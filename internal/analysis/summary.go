package analysis

// Interprocedural function summaries.  The dataflow analyzers need
// facts about callees — does this call commit the WAL, mutate the
// store, sink an error, write a success response — that a single
// function body cannot answer.  Summaries computes them module-wide by
// a bounded fixed point over the call graph: annotation seeds
// (netmarkvet:commit, netmarkvet:mutates, netmarkvet:errsink) plus
// primitive classification (os.Rename, *.Sync, table writes) propagate
// caller-ward until nothing changes.
//
// All summaries err toward silence: an unresolvable call (interface
// method, function value) contributes nothing.

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
	"sync"
)

// Module is a set of packages type-checked against one FileSet, the
// unit over which interprocedural summaries are computed.  Every
// Package loaded by LoadModule shares the Module; analysistest wraps a
// single package in a singleton Module.
type Module struct {
	Packages []*Package

	once sync.Once
	summ *Summaries
}

// FuncSummary is what the analyzers know about one module function.
type FuncSummary struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Commits: the function may make prior writes durable (WAL
	// sync/commit).  Seeded by netmarkvet:commit, closed transitively.
	Commits bool
	// Mutates: the function may mutate persistent store state.  Seeded
	// by netmarkvet:mutates, closed transitively.
	Mutates bool
	// ErrSink: the function is an annotated error sink
	// (netmarkvet:errsink) — passing an error to it counts as handling
	// it, and errflow does not look inside.
	ErrSink bool
	// DurableErr: the function has an error result and touches a
	// durability primitive, so its callers' error handling is checked
	// by errflow.
	DurableErr bool
	// ConsumesErr reports, per parameter, whether an error passed in
	// that position reaches a return, a sink, or escapes (a bare log
	// does not count).
	ConsumesErr []bool
	// AcksParam reports, per parameter, whether the function writes a
	// success response to that writer parameter (http.ResponseWriter /
	// io.Writer) — directly or through callees.
	AcksParam []bool
	// FieldWrites is the set of struct fields the function writes
	// (assign / ++ / delete / mutating method), including through
	// same-module callees.  genbump uses it to credit generation bumps
	// made by helpers called under the guard.
	FieldWrites map[types.Object]bool

	// HotPath: the function is a performance-tier root
	// (netmarkvet:hotpath on its doc comment).  hotalloc and boxcheck
	// close over the module functions it calls.
	HotPath bool
	// AllocOK: the whole function is excused from allocation checking
	// (netmarkvet:allocok on its doc comment, with a reason).
	AllocOK bool
	// Allocs are the function's own hidden-allocation sites, already
	// filtered by allocok lines and error-path exemptions.
	Allocs []AllocSite
	// Boxes are the function's own concrete->interface conversion
	// sites, filtered the same way.
	Boxes []AllocSite
	// HotCalls are the statically resolved same-module calls the
	// hotpath closure follows (calls on allocok lines are dropped).
	HotCalls []CallEdge
	// LeaksParam reports, per parameter, whether the function may
	// retain the argument past the call (stored into a field, a global,
	// a channel, or handed to a callee that does).
	LeaksParam []bool
	// ReturnsParam reports, per parameter, whether a result may alias
	// the argument.
	ReturnsParam []bool
	// ReturnsArena: a result may alias a netmarkvet:arena buffer.
	ReturnsArena bool
	// ArenaParam reports, per parameter, whether some caller passes an
	// arena-derived alias in that position (aliascap checks the body
	// under that assumption).
	ArenaParam []bool
}

// Summaries indexes FuncSummary by the function's types.Func identity.
type Summaries struct {
	byFunc map[*types.Func]*FuncSummary
	// ArenaFields is the module-wide set of struct fields tagged
	// netmarkvet:arena — pooled or reused buffers whose aliases must
	// not outlive the fill/decode scope (aliascap).
	ArenaFields map[types.Object]bool
}

// Funcs calls f for every module function summary (unordered).
func (s *Summaries) Funcs(f func(*FuncSummary)) {
	for _, fs := range s.byFunc {
		f(fs)
	}
}

// Of returns the summary for fn, or nil for functions outside the
// module (or without bodies).
func (s *Summaries) Of(fn *types.Func) *FuncSummary {
	if s == nil || fn == nil {
		return nil
	}
	return s.byFunc[fn]
}

// OfCall resolves call's static callee and returns its summary, or nil.
func (s *Summaries) OfCall(info *types.Info, call *ast.CallExpr) *FuncSummary {
	return s.Of(CalleeFunc(info, call))
}

// Summaries computes (once) and returns the module's function
// summaries.
func (m *Module) Summaries() *Summaries {
	m.once.Do(func() { m.summ = computeSummaries(m) })
	return m.summ
}

// singleton wraps one package in its own Module; used when a package
// was loaded outside LoadModule (analysistest).
func singleton(pkg *Package) *Module {
	m := &Module{Packages: []*Package{pkg}}
	pkg.Mod = m
	return m
}

// CalleeFunc resolves a call expression to its static callee, or nil
// for calls through function values, interface methods the checker
// cannot devirtualize, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func computeSummaries(m *Module) *Summaries {
	s := &Summaries{
		byFunc:      make(map[*types.Func]*FuncSummary),
		ArenaFields: make(map[types.Object]bool),
	}
	// Arena fields first: the taint fixed point below needs the full
	// module-wide set.
	for _, pkg := range m.Packages {
		collectArenaFields(pkg, s.ArenaFields)
	}
	// Seed pass: one summary per declared function, annotation bits set.
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				nparams := funcSig(fn).Params().Len()
				fs := &FuncSummary{
					Fn:           fn,
					Decl:         fd,
					Pkg:          pkg,
					ConsumesErr:  make([]bool, nparams),
					AcksParam:    make([]bool, nparams),
					FieldWrites:  make(map[types.Object]bool),
					LeaksParam:   make([]bool, nparams),
					ReturnsParam: make([]bool, nparams),
					ArenaParam:   make([]bool, nparams),
				}
				if fd.Doc != nil {
					doc := fd.Doc.Text()
					fs.Commits = strings.Contains(doc, "netmarkvet:commit")
					fs.Mutates = strings.Contains(doc, "netmarkvet:mutates")
					fs.ErrSink = strings.Contains(doc, "netmarkvet:errsink")
					fs.HotPath = strings.Contains(doc, "netmarkvet:hotpath")
					fs.AllocOK = strings.Contains(doc, "netmarkvet:allocok")
				}
				if fs.ErrSink {
					// Handing an error to a sink in any position handles it.
					for i := range fs.ConsumesErr {
						fs.ConsumesErr[i] = true
					}
				}
				s.byFunc[fn] = fs
			}
		}
	}
	// Fixed point.  Each pass re-derives the transitive bits from the
	// current table; the module call graph is shallow, so this settles
	// in a handful of passes (bounded hard in case of cycles).
	for pass := 0; pass < 12; pass++ {
		changed := false
		for _, fs := range s.byFunc {
			if updateSummary(fs, s) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Allocation facts last: they consume the converged leak facts and
	// need no further propagation (hotalloc/boxcheck walk HotCalls).
	for _, fs := range s.byFunc {
		collectAllocFacts(fs, s)
	}
	return s
}

// collectArenaFields records struct fields tagged netmarkvet:arena.
func collectArenaFields(pkg *Package, out map[types.Object]bool) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := fieldCommentText(field)
				if !strings.Contains(text, "netmarkvet:arena") {
					continue
				}
				for _, name := range field.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
}

// updateSummary re-derives fs's transitive facts, reporting whether
// anything changed.
func updateSummary(fs *FuncSummary, s *Summaries) bool {
	info := fs.Pkg.Info
	changed := false
	set := func(dst *bool, v bool) {
		if v && !*dst {
			*dst = true
			changed = true
		}
	}
	// Propagate Commits / Mutates / FieldWrites through calls; record
	// direct field writes.
	ast.Inspect(fs.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if callee := s.OfCall(info, v); callee != nil && callee != fs {
				set(&fs.Commits, callee.Commits)
				set(&fs.Mutates, callee.Mutates)
				for obj := range callee.FieldWrites {
					if !fs.FieldWrites[obj] {
						fs.FieldWrites[obj] = true
						changed = true
					}
				}
			}
			if obj := MutatedField(info, v); obj != nil && !fs.FieldWrites[obj] {
				fs.FieldWrites[obj] = true
				changed = true
			}
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if obj := writtenField(info, lhs); obj != nil && !fs.FieldWrites[obj] {
					fs.FieldWrites[obj] = true
					changed = true
				}
			}
		case *ast.IncDecStmt:
			if obj := writtenField(info, v.X); obj != nil && !fs.FieldWrites[obj] {
				fs.FieldWrites[obj] = true
				changed = true
			}
		}
		return true
	})
	// DurableErr: has an error result and touches durability.
	if !fs.DurableErr && funcReturnsError(fs.Fn) {
		found := false
		ast.Inspect(fs.Decl.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if _, dur := DurabilityCall(info, call, s); dur {
					found = true
				}
			}
			return true
		})
		set(&fs.DurableErr, found)
	}
	// ConsumesErr per error-typed parameter.
	params := funcSig(fs.Fn).Params()
	for i := 0; i < params.Len(); i++ {
		if fs.ConsumesErr[i] || !isErrorType(params.At(i).Type()) {
			continue
		}
		if paramErrConsumed(fs.Pkg, fs.Decl, params.At(i), s) {
			fs.ConsumesErr[i] = true
			changed = true
		}
	}
	// AcksParam per writer parameter.
	for i := 0; i < params.Len(); i++ {
		if fs.AcksParam[i] || !isWriterType(params.At(i).Type()) {
			continue
		}
		if paramAcked(fs.Pkg, fs.Decl, params.At(i), s) {
			fs.AcksParam[i] = true
			changed = true
		}
	}
	// LeaksParam / ReturnsParam per aliasable parameter.
	for i := 0; i < params.Len(); i++ {
		if (fs.LeaksParam[i] && fs.ReturnsParam[i]) || !aliasable(params.At(i).Type()) {
			continue
		}
		pi := i
		ts := paramSeeds(fs.Pkg, fs.Decl, func(j int) bool { return j == pi })
		localTaint(fs.Pkg, fs.Decl, ts, nil, s)
		if !fs.LeaksParam[i] && len(findSinks(fs.Pkg, fs.Decl, ts, nil, s, sinkOpts{})) > 0 {
			fs.LeaksParam[i] = true
			changed = true
		}
		if !fs.ReturnsParam[i] && returnsTainted(fs.Pkg, fs.Decl, ts, nil, s) {
			fs.ReturnsParam[i] = true
			changed = true
		}
	}
	// Arena taint: ReturnsArena for this function, ArenaParam for its
	// callees (caller-ward marking inside the same fixed point).
	if len(s.ArenaFields) > 0 {
		ts, seed, any := arenaSeed(fs, s)
		if any {
			localTaint(fs.Pkg, fs.Decl, ts, seed, s)
			// ReturnsArena comes from arena *fields* (and arena-returning
			// callees) only — not from ArenaParam seeds.  A function that
			// hands a parameter back (decodeBlock-style) is covered by
			// ReturnsParam at each call site, where the caller knows
			// whether its argument was arena-derived; folding it into
			// ReturnsArena would taint every caller unconditionally.
			if !fs.ReturnsArena {
				fieldTs := localTaint(fs.Pkg, fs.Decl, make(taintSet), seed, s)
				if returnsTainted(fs.Pkg, fs.Decl, fieldTs, seed, s) {
					fs.ReturnsArena = true
					changed = true
				}
			}
			info := fs.Pkg.Info
			ast.Inspect(fs.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				cs := s.Of(CalleeFunc(info, call))
				if cs == nil || cs == fs {
					return true
				}
				sig := funcSig(cs.Fn)
				for i, a := range call.Args {
					if !aliasTainted(info, ts, seed, s, a) {
						continue
					}
					pi := i
					if sig.Variadic() && pi >= sig.Params().Len()-1 {
						pi = sig.Params().Len() - 1
					}
					if pi < len(cs.ArenaParam) && !cs.ArenaParam[pi] && aliasable(sig.Params().At(pi).Type()) {
						cs.ArenaParam[pi] = true
						changed = true
					}
				}
				return true
			})
		}
	}
	return changed
}

// WrittenField returns the struct-field object a write target resolves
// to: `x.f = ...`, `x.f[k] = ...`, `x.f++` — nil for non-field targets.
func WrittenField(info *types.Info, lhs ast.Expr) types.Object {
	return writtenField(info, lhs)
}

// StdlibWriterArg reports the index of the writer argument a standard-
// library helper writes a response body through (io.WriteString,
// fmt.Fprintf, http.ServeContent...).
func StdlibWriterArg(fn *types.Func) (int, bool) {
	i, ok := stdlibWriterArg[stdlibFuncName(fn)]
	return i, ok
}

// StdlibNonAck reports whether fn writes a response that must not be
// treated as a success ack (http.Error and friends).
func StdlibNonAck(fn *types.Func) bool {
	return stdlibNonAck[stdlibFuncName(fn)]
}

// IsResponseWriter reports whether t is net/http.ResponseWriter.
func IsResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}

// Unparen strips parentheses.
func Unparen(e ast.Expr) ast.Expr { return unparen(e) }

// writtenField returns the struct-field object a write target resolves
// to: `x.f = ...`, `x.f[k] = ...`, `x.f++`.
func writtenField(info *types.Info, lhs ast.Expr) types.Object {
	switch v := unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.IndexExpr:
		return writtenField(info, v.X)
	case *ast.StarExpr:
		return writtenField(info, v.X)
	}
	return nil
}

// mutatingNames are method-name prefixes treated as mutating their
// receiver (genbump's heuristic for container fields like btrees).
var mutatingNames = []string{
	"insert", "delete", "remove", "add", "set", "store", "clear",
	"put", "push", "pop", "reset", "swap", "append",
}

// MutatedField classifies a call as a mutation of a struct field:
// either `delete(x.f, k)` or a mutating-named method on x.f
// (x.f.Insert(...)).  It returns the field object, or nil.
func MutatedField(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "delete" && len(call.Args) >= 1 {
			return writtenField(info, call.Args[0])
		}
	case *ast.SelectorExpr:
		name := strings.ToLower(fun.Sel.Name)
		for _, p := range mutatingNames {
			if strings.HasPrefix(name, p) {
				return writtenField(info, fun.X)
			}
		}
	}
	return nil
}

// DurabilityCall reports whether call is a durability operation whose
// error result must not be dropped: os.Rename, any Sync/SyncTo/Commit/
// WriteSnapshotFile method, any function whose name contains "sync"
// (writeFileSync, syncDir), or a module function summarized DurableErr.
// The returned name labels the diagnostic.
func DurabilityCall(info *types.Info, call *ast.CallExpr, s *Summaries) (string, bool) {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	if !funcReturnsError(fn) {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "os" && name == "Rename" {
		return "os.Rename", true
	}
	recv := funcSig(fn).Recv()
	switch name {
	case "Sync", "SyncTo", "Commit", "WriteSnapshotFile":
		if recv != nil {
			return displayFuncName(fn), true
		}
	}
	if strings.Contains(strings.ToLower(name), "sync") {
		return displayFuncName(fn), true
	}
	if fs := s.Of(fn); fs != nil && fs.DurableErr {
		return displayFuncName(fn), true
	}
	return "", false
}

func displayFuncName(fn *types.Func) string {
	if recv := funcSig(fn).Recv(); recv != nil {
		t := recv.Type()
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			star = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + star + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return fn.Name()
}

func funcReturnsError(fn *types.Func) bool {
	res := funcSig(fn).Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isWriterType reports whether t is net/http.ResponseWriter or
// io.Writer — the parameter types through which a handler helper can
// ack a request.
func isWriterType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "net/http.ResponseWriter", "io.Writer":
		return true
	}
	return false
}

// stdlibWriterArg maps standard-library helpers to the index of the
// writer argument they write a response body through.
var stdlibWriterArg = map[string]int{
	"io.WriteString":        0,
	"io.Copy":               0,
	"fmt.Fprint":            0,
	"fmt.Fprintf":           0,
	"fmt.Fprintln":          0,
	"net/http.ServeContent": 0,
	"net/http.ServeFile":    0,
}

// stdlibNonAck lists standard-library helpers that write a response we
// must NOT treat as a success ack (they set an error/redirect status
// before writing).
var stdlibNonAck = map[string]bool{
	"net/http.Error":    true,
	"net/http.NotFound": true,
	"net/http.Redirect": true,
}

func stdlibFuncName(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// ConstStatusCode evaluates e as a compile-time integer (http.StatusOK,
// a literal 204, ...), reporting ok=false for dynamic values.
func ConstStatusCode(info *types.Info, e ast.Expr) (int, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return int(v), true
}

// paramAcked reports whether fn writes a success response through the
// given writer parameter: a Write/WriteString on it, a 2xx WriteHeader,
// or passing it to a callee that acks.  A WriteHeader with a dynamic or
// non-2xx status anywhere disqualifies the function (http.Error-style
// helpers are not acks).
func paramAcked(pkg *Package, fn *ast.FuncDecl, param *types.Var, s *Summaries) bool {
	info := pkg.Info
	acks, disqualified := false, false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := unparen(sel.X).(*ast.Ident); ok && info.ObjectOf(id) == param {
				switch sel.Sel.Name {
				case "Write", "WriteString":
					acks = true
				case "WriteHeader":
					if len(call.Args) == 1 {
						if code, isConst := ConstStatusCode(info, call.Args[0]); isConst && code >= 200 && code < 300 {
							acks = true
						} else {
							disqualified = true
						}
					}
				}
			}
		}
		callee := CalleeFunc(info, call)
		for i, arg := range call.Args {
			id, ok := unparen(arg).(*ast.Ident)
			if !ok || info.ObjectOf(id) != param {
				continue
			}
			name := stdlibFuncName(callee)
			if stdlibNonAck[name] {
				disqualified = true
				continue
			}
			if idx, ok := stdlibWriterArg[name]; ok && i == idx {
				acks = true
			}
			if fs := s.Of(callee); fs != nil && i < len(fs.AcksParam) && fs.AcksParam[i] {
				acks = true
			}
		}
		return true
	})
	return acks && !disqualified
}

// funcSig returns fn's *types.Signature.  (The (*types.Func).Signature
// accessor needs go1.23; the module language version is go1.21.)
func funcSig(fn *types.Func) *types.Signature {
	return fn.Type().(*types.Signature)
}
