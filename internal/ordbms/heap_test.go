package ordbms

import (
	"bytes"
	"fmt"
	"testing"
)

func memPool(t testing.TB, pages int) *BufferPool {
	t.Helper()
	return NewBufferPool(NewMemDisk(), pages)
}

func TestHeapInsertFetch(t *testing.T) {
	h := NewHeapFile(memPool(t, 64), nil)
	rid, err := h.Insert([]byte("record one"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Fetch(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "record one" {
		t.Fatalf("got %q", got)
	}
	if h.Rows() != 1 {
		t.Fatalf("rows = %d", h.Rows())
	}
}

func TestHeapSpansPages(t *testing.T) {
	h := NewHeapFile(memPool(t, 64), nil)
	rec := make([]byte, 1000)
	var rids []RowID
	for i := 0; i < 100; i++ { // ~100KB >> one page
		rec[0] = byte(i)
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if len(h.Pages()) < 10 {
		t.Fatalf("expected >=10 pages, got %d", len(h.Pages()))
	}
	for i, rid := range rids {
		got, err := h.Fetch(rid)
		if err != nil {
			t.Fatalf("rid %v: %v", rid, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

func TestHeapRowIDsAreStable(t *testing.T) {
	// The paper's traversal scheme requires RowIDs to survive deletes of
	// other records and page compaction.
	h := NewHeapFile(memPool(t, 64), nil)
	var rids []RowID
	for i := 0; i < 50; i++ {
		rid, err := h.Insert(bytes.Repeat([]byte{byte(i)}, 100))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i := 0; i < 50; i += 2 {
		if err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 50; i += 2 {
		got, err := h.Fetch(rids[i])
		if err != nil {
			t.Fatalf("stable rid %v lost: %v", rids[i], err)
		}
		if got[0] != byte(i) {
			t.Fatalf("rid %v returned wrong record", rids[i])
		}
	}
}

func TestHeapDeleteSemantics(t *testing.T) {
	h := NewHeapFile(memPool(t, 64), nil)
	rid, _ := h.Insert([]byte("x"))
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Fetch(rid); err != ErrRecordDeleted {
		t.Fatalf("want ErrRecordDeleted, got %v", err)
	}
	if err := h.Delete(rid); err != ErrRecordDeleted {
		t.Fatalf("double delete: %v", err)
	}
	if h.Rows() != 0 {
		t.Fatalf("rows = %d", h.Rows())
	}
}

func TestHeapUpdateInPlace(t *testing.T) {
	h := NewHeapFile(memPool(t, 64), nil)
	rid, _ := h.Insert([]byte("aaaaaaaaaa"))
	if err := h.Update(rid, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	got, _ := h.Fetch(rid)
	if string(got) != "bbbb" {
		t.Fatalf("got %q", got)
	}
	if err := h.Update(rid, make([]byte, 5000)); err == nil {
		t.Fatal("oversize in-place update should fail")
	}
}

func TestHeapScanOrderAndStop(t *testing.T) {
	h := NewHeapFile(memPool(t, 64), nil)
	for i := 0; i < 30; i++ {
		if _, err := h.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var seen []byte
	if err := h.Scan(func(_ RowID, rec []byte) bool {
		seen = append(seen, rec[0])
		return len(seen) < 10
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 {
		t.Fatalf("scan early-stop visited %d", len(seen))
	}
	seen = seen[:0]
	if err := h.Scan(func(_ RowID, rec []byte) bool {
		seen = append(seen, rec[0])
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 30 {
		t.Fatalf("full scan visited %d", len(seen))
	}
}

func TestHeapRejectsOversizeRecord(t *testing.T) {
	h := NewHeapFile(memPool(t, 64), nil)
	if _, err := h.Insert(make([]byte, PageSize)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestHeapFreeSpaceReuse(t *testing.T) {
	h := NewHeapFile(memPool(t, 64), nil)
	// Fill two pages.
	var rids []RowID
	for i := 0; i < 14; i++ {
		rid, err := h.Insert(make([]byte, 1000))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	pagesBefore := len(h.Pages())
	// Free most of page 1 and reinsert; no new page should be allocated.
	for i := 0; i < 6; i++ {
		if err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Deletes don't update freeHint; but the page is compactable via
	// insert retry paths.  Insert smaller records that fit in slack space.
	for i := 0; i < 4; i++ {
		if _, err := h.Insert(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(h.Pages()); got > pagesBefore+1 {
		t.Fatalf("pages grew from %d to %d despite free space", pagesBefore, got)
	}
}

func TestBufferPoolEviction(t *testing.T) {
	disk := NewMemDisk()
	pool := NewBufferPool(disk, 8)
	h := NewHeapFile(pool, nil)
	var rids []RowID
	for i := 0; i < 50; i++ { // 50 pages through an 8-page pool
		rid, err := h.Insert(bytes.Repeat([]byte{byte(i)}, 5000))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i, rid := range rids {
		got, err := h.Fetch(rid)
		if err != nil {
			t.Fatalf("fetch through eviction: %v", err)
		}
		if got[0] != byte(i) {
			t.Fatalf("record %d corrupted through eviction", i)
		}
	}
	_, misses, evictions := pool.Stats()
	if evictions == 0 || misses == 0 {
		t.Fatalf("expected eviction traffic, got misses=%d evictions=%d", misses, evictions)
	}
}

func TestHeapConcurrentInsertFetch(t *testing.T) {
	h := NewHeapFile(memPool(t, 256), nil)
	const g, per = 8, 200
	errc := make(chan error, g)
	for w := 0; w < g; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				rec := []byte(fmt.Sprintf("worker-%d-rec-%d", w, i))
				rid, err := h.Insert(rec)
				if err != nil {
					errc <- err
					return
				}
				got, err := h.Fetch(rid)
				if err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(got, rec) {
					errc <- fmt.Errorf("read own write mismatch: %q != %q", got, rec)
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < g; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if h.Rows() != g*per {
		t.Fatalf("rows = %d, want %d", h.Rows(), g*per)
	}
}
