package ordbms

import (
	"fmt"
	"sync"
)

// HeapFile is an unordered collection of records addressed by RowID.
// Each table owns one heap file.  Records larger than MaxRecordSize are
// rejected (the XML store keeps node payloads well under a page).
//
// The heap keeps an in-memory free-space map so inserts do not scan; the
// map is rebuilt when a store is reopened.
type HeapFile struct {
	// mu orders page-list growth and the free-space map.
	// netmarkvet:lockorder 30
	mu    sync.Mutex
	pool  *BufferPool
	wal   *WAL // may be nil for unlogged heaps
	tag   string
	pages []uint32 // guarded by mu
	// freeHint maps pageNo -> approximate free bytes, only for pages with
	// meaningful free space.  Guarded by mu.
	freeHint map[uint32]int
	rows     int64 // guarded by mu
}

// NewHeapFile creates an empty heap backed by the pool.
func NewHeapFile(pool *BufferPool, wal *WAL) *HeapFile {
	return &HeapFile{pool: pool, wal: wal, freeHint: make(map[uint32]int)}
}

// OpenHeapFile reattaches a heap to an existing page list (from the
// catalog) and rebuilds the free-space map and row count.
func OpenHeapFile(pool *BufferPool, wal *WAL, pages []uint32) (*HeapFile, error) {
	h := &HeapFile{pool: pool, wal: wal, pages: append([]uint32(nil), pages...), freeHint: make(map[uint32]int)}
	for _, no := range pages {
		f, err := pool.Fetch(no)
		if err != nil {
			return nil, err
		}
		f.Latch.RLock()
		free := f.Page.FreeSpace()
		live := 0
		f.Page.LiveRecords(func(int, []byte) bool { live++; return true })
		f.Latch.RUnlock()
		pool.Unpin(f, false)
		if free > 64 {
			h.freeHint[no] = free
		}
		h.rows += int64(live)
	}
	return h, nil
}

// OpenHeapFileWithMeta reattaches a heap using checkpointed metadata —
// row count and free-space map from the derived snapshot — instead of
// fetching and scanning every page.  Only valid when the snapshot's
// stamps prove the heap is byte-identical to checkpoint time (see
// loadDerivedSnapshot); it is what makes reopening O(1) in corpus size.
func OpenHeapFileWithMeta(pool *BufferPool, wal *WAL, pages []uint32, rows int64, free map[uint32]int) *HeapFile {
	h := &HeapFile{
		pool:     pool,
		wal:      wal,
		pages:    append([]uint32(nil), pages...),
		freeHint: make(map[uint32]int, len(free)),
		rows:     rows,
	}
	for p, f := range free {
		h.freeHint[p] = f
	}
	return h
}

// Meta snapshots the heap's derived metadata (live row count and
// free-space map) for the checkpoint's derived snapshot.
func (h *HeapFile) Meta() (rows int64, free map[uint32]int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	free = make(map[uint32]int, len(h.freeHint))
	for p, f := range h.freeHint {
		free[p] = f
	}
	return h.rows, free
}

// Pages returns the page numbers owned by this heap (for the catalog).
func (h *HeapFile) Pages() []uint32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint32(nil), h.pages...)
}

// Rows returns the live record count.
func (h *HeapFile) Rows() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rows
}

// Insert stores a record and returns its physical RowID.
func (h *HeapFile) Insert(rec []byte) (RowID, error) {
	if len(rec) > MaxRecordSize {
		return ZeroRowID, fmt.Errorf("ordbms: record of %d bytes exceeds page capacity", len(rec))
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	// Try pages with known free space first.
	for no, free := range h.freeHint {
		if free < len(rec)+slotSize {
			continue
		}
		rid, ok, err := h.tryInsertLocked(no, rec)
		if err != nil {
			return ZeroRowID, err
		}
		if ok {
			return rid, nil
		}
		delete(h.freeHint, no) // hint was stale
	}
	// Try the last page (append locality).
	if n := len(h.pages); n > 0 {
		no := h.pages[n-1]
		rid, ok, err := h.tryInsertLocked(no, rec)
		if err != nil {
			return ZeroRowID, err
		}
		if ok {
			return rid, nil
		}
	}
	// Allocate a fresh page.
	f, err := h.pool.NewPage()
	if err != nil {
		return ZeroRowID, err
	}
	h.pages = append(h.pages, f.PageNo)
	f.Latch.Lock()
	slot, err := f.Page.Insert(rec)
	if err == nil && h.wal != nil {
		// The adoption must be logged before the insert record: recovery
		// re-attaches the page to this heap even when the catalog predates
		// the allocation (see walAlloc).
		h.wal.LogAlloc(h.tag, f.PageNo)
		lsn := h.wal.LogInsert(f.PageNo, uint16(slot), rec)
		f.Page.SetLSN(lsn)
	}
	free := f.Page.FreeSpace()
	f.Latch.Unlock()
	h.pool.Unpin(f, true)
	if err != nil {
		return ZeroRowID, err
	}
	if free > 64 {
		h.freeHint[f.PageNo] = free
	}
	h.rows++
	return RowID{Page: f.PageNo, Slot: uint16(slot)}, nil
}

// tryInsertLocked attempts an insert into page no.  Caller holds h.mu.
func (h *HeapFile) tryInsertLocked(no uint32, rec []byte) (RowID, bool, error) {
	f, err := h.pool.Fetch(no)
	if err != nil {
		return ZeroRowID, false, err
	}
	f.Latch.Lock()
	slot, ierr := f.Page.Insert(rec)
	var lsn uint64
	if ierr == nil && h.wal != nil {
		lsn = h.wal.LogInsert(no, uint16(slot), rec)
		f.Page.SetLSN(lsn)
	}
	free := f.Page.FreeSpace()
	f.Latch.Unlock()
	h.pool.Unpin(f, ierr == nil)
	if ierr != nil {
		if ierr == errPageFull {
			return ZeroRowID, false, nil
		}
		return ZeroRowID, false, ierr
	}
	if free > 64 {
		h.freeHint[no] = free
	} else {
		delete(h.freeHint, no)
	}
	h.rows++
	return RowID{Page: no, Slot: uint16(slot)}, true, nil
}

// Fetch returns a copy of the record at rid.
func (h *HeapFile) Fetch(rid RowID) ([]byte, error) {
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	f.Latch.RLock()
	rec, gerr := f.Page.Get(int(rid.Slot))
	var cp []byte
	if gerr == nil {
		cp = make([]byte, len(rec))
		copy(cp, rec)
	}
	f.Latch.RUnlock()
	h.pool.Unpin(f, false)
	if gerr != nil {
		return nil, gerr
	}
	return cp, nil
}

// View invokes fn with the record bytes at rid while the page read latch
// is held, skipping Fetch's per-record copy.  fn must not retain rec or
// block; any byte slice needed after fn returns must be copied (note that
// DecodeRow/DecodeRowInto copy every payload).
func (h *HeapFile) View(rid RowID, fn func(rec []byte) error) error {
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	f.Latch.RLock()
	rec, gerr := f.Page.Get(int(rid.Slot))
	if gerr == nil {
		gerr = fn(rec)
	}
	f.Latch.RUnlock()
	h.pool.Unpin(f, false)
	return gerr
}

// ViewMany invokes fn for each live record among rids, in input order,
// reusing the pinned page frame across consecutive rids on the same page
// — callers that sort rids into physical order pay one pool fetch per
// page, not per record.  Deleted records are silently skipped (readers
// racing a delete want the survivors, not an error); any other fetch
// error, or an error from fn, aborts the walk.  The fn contract is the
// same as View's: rec is only valid during the call.
func (h *HeapFile) ViewMany(rids []RowID, fn func(i int, rec []byte) error) error {
	var f *Frame
	var cur uint32
	release := func() {
		if f != nil {
			h.pool.Unpin(f, false)
			f = nil
		}
	}
	defer release()
	for i, rid := range rids {
		if f == nil || cur != rid.Page {
			release()
			var err error
			if f, err = h.pool.Fetch(rid.Page); err != nil {
				return err
			}
			cur = rid.Page
		}
		f.Latch.RLock()
		rec, gerr := f.Page.Get(int(rid.Slot))
		var ferr error
		if gerr == nil {
			ferr = fn(i, rec)
		}
		f.Latch.RUnlock()
		if gerr != nil && gerr != ErrRecordDeleted {
			return gerr
		}
		if ferr != nil {
			return ferr
		}
	}
	return nil
}

// Delete removes the record at rid.
func (h *HeapFile) Delete(rid RowID) error {
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	f.Latch.Lock()
	derr := f.Page.Delete(int(rid.Slot))
	if derr == nil && h.wal != nil {
		lsn := h.wal.LogDelete(rid.Page, rid.Slot)
		f.Page.SetLSN(lsn)
	}
	f.Latch.Unlock()
	h.pool.Unpin(f, derr == nil)
	if derr != nil {
		return derr
	}
	h.mu.Lock()
	h.rows--
	h.mu.Unlock()
	return nil
}

// Update rewrites the record at rid in place.  The caller must ensure the
// new record is not larger than the original (the XML store only performs
// same-size link patches); larger payloads return an error.
func (h *HeapFile) Update(rid RowID, rec []byte) error {
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	f.Latch.Lock()
	ok, uerr := f.Page.UpdateInPlace(int(rid.Slot), rec)
	if uerr == nil && ok && h.wal != nil {
		lsn := h.wal.LogUpdate(rid.Page, rid.Slot, rec)
		f.Page.SetLSN(lsn)
	}
	f.Latch.Unlock()
	h.pool.Unpin(f, uerr == nil && ok)
	if uerr != nil {
		return uerr
	}
	if !ok {
		return fmt.Errorf("ordbms: update at %v does not fit in place (%d bytes)", rid, len(rec))
	}
	return nil
}

// Scan calls fn for every live record in physical order.  fn must copy the
// record if it retains it.  Returning false stops the scan.
func (h *HeapFile) Scan(fn func(rid RowID, rec []byte) bool) error {
	h.mu.Lock()
	pages := append([]uint32(nil), h.pages...)
	h.mu.Unlock()
	for _, no := range pages {
		f, err := h.pool.Fetch(no)
		if err != nil {
			return err
		}
		stop := false
		f.Latch.RLock()
		f.Page.LiveRecords(func(slot int, rec []byte) bool {
			if !fn(RowID{Page: no, Slot: uint16(slot)}, rec) {
				stop = true
				return false
			}
			return true
		})
		f.Latch.RUnlock()
		h.pool.Unpin(f, false)
		if stop {
			return nil
		}
	}
	return nil
}
