package ordbms

import "fmt"

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema, validating that column names are unique.
func NewSchema(cols ...Column) (Schema, error) {
	s := Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return Schema{}, fmt.Errorf("ordbms: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return Schema{}, fmt.Errorf("ordbms: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics; for statically known schemas.
func MustSchema(cols ...Column) Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	if s.byName == nil {
		for i, c := range s.Columns {
			if c.Name == name {
				return i
			}
		}
		return -1
	}
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Columns) }

// Validate checks a row against the schema.  NULL is allowed in any
// column; otherwise value types must match exactly.
func (s Schema) Validate(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("ordbms: row arity %d != schema arity %d", len(r), len(s.Columns))
	}
	for i, v := range r {
		if v.Type == TypeNull {
			continue
		}
		if v.Type != s.Columns[i].Type {
			return fmt.Errorf("ordbms: column %q expects %v, got %v", s.Columns[i].Name, s.Columns[i].Type, v.Type)
		}
	}
	return nil
}
