package ordbms

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed size of every page in the database, matching the
// common ORDBMS default of 8 KiB.
const PageSize = 8192

// Page header layout (bytes):
//
//	0..1   number of slots (uint16)
//	2..3   free-space lower bound: first byte past the slot directory
//	4..5   free-space upper bound: first byte of the record area
//	6..7   flags (unused, reserved)
//	8..15  page LSN (uint64) — the WAL position that last touched the page
//
// The slot directory grows upward from byte 16; record data grows downward
// from the end of the page.  Each slot entry is 4 bytes: record offset
// (uint16) and record length (uint16).  offset==0 marks a dead (deleted)
// slot; offsets are always >= headerSize for live records.
const (
	pageHeaderSize = 16
	slotSize       = 4
)

// slotDead marks a deleted slot's offset.
const slotDead = 0

// Page is a fixed-size slotted page.  It is not safe for concurrent use;
// the buffer pool serialises access via per-frame latches.
type Page struct {
	data [PageSize]byte
}

// NewPage returns an initialised empty page.
func NewPage() *Page {
	p := &Page{}
	p.Reset()
	return p
}

// Reset reinitialises the page to empty.
func (p *Page) Reset() {
	for i := range p.data {
		p.data[i] = 0
	}
	p.setNumSlots(0)
	p.setFreeLower(pageHeaderSize)
	p.setFreeUpper(PageSize)
}

// Data exposes the raw page bytes for I/O.
func (p *Page) Data() []byte { return p.data[:] }

// LoadFrom copies raw bytes into the page.
func (p *Page) LoadFrom(b []byte) {
	copy(p.data[:], b)
}

func (p *Page) numSlots() int      { return int(binary.LittleEndian.Uint16(p.data[0:2])) }
func (p *Page) setNumSlots(n int)  { binary.LittleEndian.PutUint16(p.data[0:2], uint16(n)) }
func (p *Page) freeLower() int     { return int(binary.LittleEndian.Uint16(p.data[2:4])) }
func (p *Page) setFreeLower(n int) { binary.LittleEndian.PutUint16(p.data[2:4], uint16(n)) }
func (p *Page) freeUpper() int {
	v := int(binary.LittleEndian.Uint16(p.data[4:6]))
	if v == 0 {
		return PageSize // uint16 wraps at 65536; PageSize fits but 0 means "end"
	}
	return v
}
func (p *Page) setFreeUpper(n int) { binary.LittleEndian.PutUint16(p.data[4:6], uint16(n%65536)) }

// LSN returns the page's last-writer WAL position.
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.data[8:16]) }

// SetLSN records the WAL position of the latest change to this page.
func (p *Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.data[8:16], lsn) }

func (p *Page) slotAt(i int) (off, length int) {
	base := pageHeaderSize + i*slotSize
	off = int(binary.LittleEndian.Uint16(p.data[base : base+2]))
	length = int(binary.LittleEndian.Uint16(p.data[base+2 : base+4]))
	return
}

func (p *Page) setSlot(i, off, length int) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p.data[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p.data[base+2:base+4], uint16(length))
}

// FreeSpace returns the bytes available for a new record including its
// slot directory entry.
func (p *Page) FreeSpace() int {
	free := p.freeUpper() - p.freeLower() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// NumSlots returns the size of the slot directory, including dead slots.
func (p *Page) NumSlots() int { return p.numSlots() }

// CanFit reports whether a record of n bytes fits in this page.
func (p *Page) CanFit(n int) bool { return p.FreeSpace() >= n }

// Insert places a record in the page and returns its slot number.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) == 0 {
		return 0, fmt.Errorf("ordbms: empty record")
	}
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("ordbms: record of %d bytes exceeds max %d", len(rec), MaxRecordSize)
	}
	// Reuse a dead slot when possible so slot numbers stay dense.
	slot := -1
	for i := 0; i < p.numSlots(); i++ {
		if off, _ := p.slotAt(i); off == slotDead {
			slot = i
			break
		}
	}
	needSlot := 0
	if slot == -1 {
		needSlot = slotSize
	}
	if p.freeUpper()-p.freeLower()-needSlot < len(rec) {
		return 0, errPageFull
	}
	newUpper := p.freeUpper() - len(rec)
	copy(p.data[newUpper:], rec)
	p.setFreeUpper(newUpper)
	if slot == -1 {
		slot = p.numSlots()
		p.setNumSlots(slot + 1)
		p.setFreeLower(p.freeLower() + slotSize)
	}
	p.setSlot(slot, newUpper, len(rec))
	return slot, nil
}

var errPageFull = fmt.Errorf("ordbms: page full")

// Get returns the record stored in the given slot.  The returned slice
// aliases page memory and must be copied if retained.
func (p *Page) Get(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.numSlots() {
		return nil, fmt.Errorf("ordbms: slot %d out of range (have %d)", slot, p.numSlots())
	}
	off, length := p.slotAt(slot)
	if off == slotDead {
		return nil, ErrRecordDeleted
	}
	return p.data[off : off+length], nil
}

// ErrRecordDeleted is returned when fetching a slot whose record was deleted.
var ErrRecordDeleted = fmt.Errorf("ordbms: record deleted")

// Delete tombstones a slot.  Space is reclaimed by Compact.
func (p *Page) Delete(slot int) error {
	if slot < 0 || slot >= p.numSlots() {
		return fmt.Errorf("ordbms: slot %d out of range", slot)
	}
	off, _ := p.slotAt(slot)
	if off == slotDead {
		return ErrRecordDeleted
	}
	p.setSlot(slot, slotDead, 0)
	return nil
}

// UpdateInPlace overwrites a record when the new payload is not larger
// than the old one.  Returns false when it does not fit in place.
func (p *Page) UpdateInPlace(slot int, rec []byte) (bool, error) {
	if slot < 0 || slot >= p.numSlots() {
		return false, fmt.Errorf("ordbms: slot %d out of range", slot)
	}
	off, length := p.slotAt(slot)
	if off == slotDead {
		return false, ErrRecordDeleted
	}
	if len(rec) > length {
		return false, nil
	}
	copy(p.data[off:], rec)
	p.setSlot(slot, off, len(rec))
	return true, nil
}

// Compact rewrites the record area to squeeze out holes left by deletes,
// preserving slot numbers (and therefore RowIDs).
func (p *Page) Compact() {
	type live struct {
		slot, length int
		data         []byte
	}
	var lives []live
	for i := 0; i < p.numSlots(); i++ {
		off, length := p.slotAt(i)
		if off == slotDead {
			continue
		}
		cp := make([]byte, length)
		copy(cp, p.data[off:off+length])
		lives = append(lives, live{i, length, cp})
	}
	upper := PageSize
	for _, l := range lives {
		upper -= l.length
		copy(p.data[upper:], l.data)
		p.setSlot(l.slot, upper, l.length)
	}
	p.setFreeUpper(upper)
}

// LiveRecords calls fn for every live slot in slot order.
func (p *Page) LiveRecords(fn func(slot int, rec []byte) bool) {
	for i := 0; i < p.numSlots(); i++ {
		off, length := p.slotAt(i)
		if off == slotDead {
			continue
		}
		if !fn(i, p.data[off:off+length]) {
			return
		}
	}
}

// MaxRecordSize is the largest record a page accepts.  Larger payloads are
// chunked by the heap layer.
const MaxRecordSize = PageSize - pageHeaderSize - slotSize
