package ordbms

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"netmark/internal/vfs"
)

// Options configures a database instance.
type Options struct {
	// Dir is the directory holding the data file, WAL and catalog.
	// Empty means a volatile in-memory store with no logging.
	Dir string
	// PoolPages caps the buffer pool (default 4096 pages = 32 MiB).
	PoolPages int
	// SyncOnCommit forces an fsync of the WAL on every Commit call.
	// Defaults to true for durable stores.
	NoSyncOnCommit bool
	// NoDerivedSnapshot disables writing and loading the engine's derived
	// snapshot (heap metadata + secondary index contents), forcing the
	// full-scan rebuild on every open — the ablation knob for measuring
	// what the snapshot buys.
	NoDerivedSnapshot bool
	// FS routes every file operation the store performs (data file, WAL,
	// catalog, snapshots).  Nil means the real filesystem; fault-injection
	// tests pass a vfs.FaultFS.
	FS vfs.FS
}

// DB is the database engine facade: a disk manager, buffer pool, WAL and a
// set of tables.
type DB struct {
	// mu serialises DDL against table lookup.  netmarkvet:lockorder 10
	mu   sync.RWMutex
	opts Options
	dir  string
	fs   vfs.FS
	disk DiskManager
	pool *BufferPool
	wal  *WAL

	// health tracks degraded read-only mode: write-path I/O failures
	// flip it, a successful checkpoint clears it.
	health healthState

	tables map[string]*Table // guarded by mu

	// catalogGen is the generation of the catalog as loaded from disk,
	// advanced on every successful checkpoint.  Snapshot stamps compare
	// against it.
	catalogGen uint64

	// preCkpt holds the registered pre-checkpoint hooks, run inside the
	// checkpoint critical section after all pages are flushed and before
	// the catalog is saved and the WAL truncated.
	preCkpt []func(CheckpointInfo) error

	// ckptFault, when set, injects a simulated crash at a named step of
	// the checkpoint sequence (test-only; see SetCheckpointFault).
	ckptFault func(step string) error

	// walAllocs maps table name to pages the WAL says it adopted —
	// collected during recovery, merged into the catalog page lists by
	// loadCatalog (the catalog only learns about pages at checkpoints).
	walAllocs map[string][]uint32
	// allocsGrew reports that some table's page list had to be extended
	// beyond what the catalog recorded.
	allocsGrew bool
	// walEndAtOpen is the WAL's end LSN captured right after recovery —
	// the stamp persisted derived snapshots must carry to be current.
	walEndAtOpen uint64

	// Replayed reports how many WAL records crash recovery applied when
	// the store was opened (0 for clean shutdowns and fresh stores).
	Replayed int

	// DerivedLoads reports how many tables were opened from the derived
	// snapshot instead of a heap scan (0 when the snapshot was missing,
	// stale, corrupt, or disabled).
	DerivedLoads int
}

// CheckpointInfo is handed to pre-checkpoint hooks.  At hook time every
// dirty page is flushed and fsynced; CatalogGen and LSN are the stamps
// the checkpoint is about to commit, so derived state persisted under
// them is exactly as current as the catalog and WAL the reopening
// process will observe.
type CheckpointInfo struct {
	// Dir is the database directory the hook should persist into.
	Dir string
	// CatalogGen is the catalog generation this checkpoint will write.
	CatalogGen uint64
	// LSN is the WAL LSN the checkpoint truncates through — the new base
	// LSN after the checkpoint completes.
	LSN uint64
	// FS is the filesystem the snapshot must be written through (the
	// store's configured vfs; nil falls back to the real filesystem).
	FS vfs.FS
	// Fault is the test-only crash injector (nil in production): hooks
	// performing multi-step writes call it between steps and abort when
	// it returns an error, leaving files as a crash would.
	Fault func(step string) error
}

// filesystem returns the FS snapshots are written through, defaulting
// to the real one.
func (ci CheckpointInfo) filesystem() vfs.FS {
	if ci.FS == nil {
		return vfs.OS
	}
	return ci.FS
}

// WriteSnapshotFile commits a snapshot into the checkpoint's directory
// with the engine's crash-durability sequence — temp file, fsync,
// rename, directory fsync — calling the fault injector (when armed) at
// "<step>-temp" and "<step>-rename".  Hooks use it so every snapshot in
// the checkpoint shares one implementation of the atomic write.
func (ci CheckpointInfo) WriteSnapshotFile(name string, data []byte, step string) error {
	fsys := ci.filesystem()
	path := filepath.Join(ci.Dir, name)
	if err := writeFileSync(fsys, path+".tmp", data); err != nil {
		return err
	}
	if ci.Fault != nil {
		if err := ci.Fault(step + "-temp"); err != nil {
			return err
		}
	}
	if err := fsys.Rename(path+".tmp", path); err != nil {
		return err
	}
	if ci.Fault != nil {
		if err := ci.Fault(step + "-rename"); err != nil {
			return err
		}
	}
	return syncDir(fsys, ci.Dir)
}

// Open creates or reopens a database.
func Open(opts Options) (*DB, error) {
	if opts.PoolPages == 0 {
		opts.PoolPages = 4096
	}
	db := &DB{opts: opts, dir: opts.Dir, fs: opts.FS, tables: make(map[string]*Table)}
	if db.fs == nil {
		db.fs = vfs.OS
	}
	if opts.Dir == "" {
		db.disk = NewMemDisk()
		db.pool = NewBufferPool(db.disk, opts.PoolPages)
		return db, nil
	}
	if err := db.fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ordbms: create dir: %w", err)
	}
	disk, err := OpenFileDisk(db.fs, filepath.Join(opts.Dir, "data.nmdb"))
	if err != nil {
		return nil, err
	}
	wal, err := OpenWAL(db.fs, filepath.Join(opts.Dir, "wal.nmlog"))
	if err != nil {
		disk.Close()
		return nil, err
	}
	db.disk = disk
	db.wal = wal
	db.pool = NewBufferPool(disk, opts.PoolPages)
	wal.AttachTo(db.pool)
	// The open is doomed on these paths; closing may itself fail, and a
	// failed WAL close is durability information, so fold it into the
	// reported error instead of dropping it.
	fail := func(e error) error {
		return errors.Join(e, wal.Close(), disk.Close())
	}
	replayed, allocs, ops, torn, err := Recover(disk, db.pool, wal)
	if err != nil {
		return nil, fail(fmt.Errorf("ordbms: recovery failed: %w", err))
	}
	db.Replayed = replayed
	db.walAllocs = allocs
	db.walEndAtOpen = wal.SyncedLSN()
	if err := db.loadCatalog(); err != nil {
		return nil, fail(err)
	}
	if err := db.applyRecoveredOps(ops); err != nil {
		return nil, fail(err)
	}
	if replayed > 0 || db.allocsGrew || torn {
		// Re-establish the checkpoint invariants recovery consumed: the
		// catalog must record every page the replayed records adopted
		// before those records can be dropped, so run the full sequence
		// (derived snapshot, catalog, WAL truncation) rather than bare
		// WAL surgery.  A torn tail forces this too — new records
		// appended after surviving garbage would be unreachable by the
		// next replay, so the garbage must be truncated away before any
		// append happens.
		if err := db.Checkpoint(); err != nil {
			return nil, fail(fmt.Errorf("ordbms: post-recovery checkpoint: %w", err))
		}
	}
	return db, nil
}

// InMemory reports whether the store is volatile.
func (db *DB) InMemory() bool { return db.dir == "" }

// Pool exposes the buffer pool for stats.
func (db *DB) Pool() *BufferPool { return db.pool }

// CreateTable registers a new table.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("ordbms: empty table name")
	}
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("ordbms: table %q already exists", name)
	}
	t := &Table{
		db:      db,
		name:    name,
		schema:  schema,
		heap:    NewHeapFile(db.pool, db.wal),
		indexes: make(map[string]*Index),
	}
	t.heap.tag = name
	if db.wal != nil {
		db.wal.LogCreateTable(name, schema)
	}
	db.tables[name] = t
	return t, nil
}

// applyRecoveredOps replays logged DDL the catalog has not seen: tables
// created (with their committed pages), indexes added, tables dropped —
// all since the last checkpoint.  Ops the catalog already reflects are
// skipped; applying anything marks the catalog stale so Open runs a
// full checkpoint to persist the merged state.  Runs during Open,
// before the DB is shared with any other goroutine.
//
// netmarkvet:ignore lockcheck — open-time, single-goroutine
func (db *DB) applyRecoveredOps(ops []RecoveredOp) error {
	for _, op := range ops {
		switch op.Kind {
		case walCreateTable:
			if _, exists := db.tables[op.Table]; exists {
				continue
			}
			schema, err := NewSchema(op.Cols...)
			if err != nil {
				return fmt.Errorf("ordbms: recovered create of %q: %w", op.Table, err)
			}
			heap, err := OpenHeapFile(db.pool, db.wal, db.walAllocs[op.Table])
			if err != nil {
				return err
			}
			heap.tag = op.Table
			db.tables[op.Table] = &Table{
				db: db, name: op.Table, schema: schema,
				heap: heap, indexes: make(map[string]*Index),
			}
			db.allocsGrew = true
		case walCreateIndex:
			t := db.tables[op.Table]
			if t == nil {
				continue
			}
			if _, dup := t.indexes[op.Column]; dup {
				continue
			}
			if err := t.buildIndexLocked(op.Column); err != nil {
				return err
			}
			db.allocsGrew = true
		case walDropTable:
			if _, ok := db.tables[op.Table]; ok {
				delete(db.tables, op.Table)
				db.allocsGrew = true
			}
		}
	}
	return nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// DropTable removes a table.  Its pages are abandoned (vacuum is a
// non-goal for the reproduction).
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("ordbms: no table %q", name)
	}
	if db.wal != nil {
		db.wal.LogDropTable(name)
	}
	delete(db.tables, name)
	return nil
}

// TableNames lists tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tableNamesLocked()
}

func (db *DB) tableNamesLocked() []string {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Commit makes all mutations so far durable: the WAL is flushed (and
// fsynced unless disabled).  Concurrent commits coalesce into one fsync
// (WAL group commit).  In-memory stores are a no-op.  A commit failure
// degrades the store (see Writable); the data whose commit failed is
// reported failed, never silently acked.
func (db *DB) Commit() error {
	if db.wal == nil {
		return nil
	}
	if err := db.Writable(); err != nil {
		return err
	}
	var err error
	if db.opts.NoSyncOnCommit {
		err = db.wal.Flush(db.wal.NextLSN())
	} else {
		err = db.wal.Sync()
	}
	if err != nil {
		db.noteWriteError("wal commit", err)
	}
	return err
}

// FS returns the filesystem all of the store's file I/O goes through.
// Layered stores (xmlstore) use it for their own snapshot reads so
// fault injection covers them too.
func (db *DB) FS() vfs.FS {
	if db.fs == nil {
		return vfs.OS
	}
	return db.fs
}

// WALStats returns (records appended, fsyncs issued), both zero for
// in-memory stores.  Group-commit batching shows up as syncs growing per
// batch while appends grow per record.
func (db *DB) WALStats() (appends, syncs uint64) {
	if db.wal == nil {
		return 0, 0
	}
	return db.wal.Appends(), db.wal.Syncs()
}

// RegisterPreCheckpointHook installs fn to run inside every checkpoint's
// critical section, after all pages are flushed and before the catalog
// is saved and the WAL truncated.  Stores layered on the engine persist
// their derived state here, stamped with the CheckpointInfo values, so a
// reopen can tell exactly whether that state matches the heap.  A hook
// error aborts the checkpoint (the WAL keeps its records, so nothing is
// lost).  Hooks must not call back into DB methods.
func (db *DB) RegisterPreCheckpointHook(fn func(CheckpointInfo) error) {
	db.mu.Lock()
	db.preCkpt = append(db.preCkpt, fn)
	db.mu.Unlock()
}

// CatalogGen returns the catalog generation currently on disk.
func (db *DB) CatalogGen() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.catalogGen
}

// WALBaseLSN returns the LSN the on-disk log starts at (0 for in-memory
// stores).
func (db *DB) WALBaseLSN() uint64 {
	if db.wal == nil {
		return 0
	}
	return db.wal.BaseLSN()
}

// WALEndLSN returns the log's end LSN as captured at open, before any
// new activity.  A derived snapshot is current exactly when it is
// stamped with this LSN and recovery replayed nothing: every logged
// record was already reflected in the flushed heap the snapshot
// serialised, and nothing was logged since.
func (db *DB) WALEndLSN() uint64 {
	if db.wal == nil {
		return 0
	}
	return db.walEndAtOpen
}

// Dir returns the storage directory ("" for in-memory stores).
func (db *DB) Dir() string { return db.dir }

// SetCheckpointFault installs a test-only crash injector: fn is invoked
// at each named step of the checkpoint sequence ("snapshot-temp",
// "snapshot-rename", "derived-temp", "derived-rename", "catalog-temp",
// "catalog-rename", "wal-temp", "wal-rename") and a returned error
// aborts the checkpoint at that point, leaving the files exactly as a
// crash there would.  Never set in production.
func (db *DB) SetCheckpointFault(fn func(step string) error) {
	db.mu.Lock()
	db.ckptFault = fn
	db.mu.Unlock()
}

// Checkpoint flushes all pages, persists derived snapshots and the
// catalog, and truncates the WAL.  After a clean checkpoint, reopening
// replays nothing and loads derived state directly.
//
// The sequence is crash-safe at every step: the catalog and the WAL
// successor are written temp-file-first with fsyncs and committed by
// rename, and every derived snapshot is stamped with the catalog
// generation and checkpoint LSN so a reopen after a mid-sequence crash
// either sees matching stamps (state is current) or falls back to the
// WAL replay + full-scan rebuild path.
func (db *DB) Checkpoint() error {
	if err := db.checkpoint(); err != nil {
		// A failed checkpoint is a write-path failure: durability could
		// not be re-established, so the store (stays) degraded.
		db.noteWriteError("checkpoint", err)
		return err
	}
	// A checkpoint that completed proved the device writable end to end
	// (pages, snapshots, catalog, WAL swap all written and fsynced), so
	// write service can resume.
	db.clearDegraded()
	return nil
}

func (db *DB) checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var cut uint64
	if db.wal != nil {
		if err := db.wal.Sync(); err != nil && db.wal.Poisoned() == nil {
			return err
		}
		// A poisoned log does not abort the checkpoint: the WAL swap at
		// the end rebuilds the log on a fresh handle, which is exactly
		// the repair path.  cut stays at the last trustworthy fsync, so
		// every record in doubt survives into (and is fsynced with) the
		// successor file.
		//
		// Records at or below cut are covered by the page flush below;
		// records appended after it (concurrent writers) survive the
		// truncation as the new log's tail.
		cut = db.wal.SyncedLSN()
	}
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	if db.dir != "" {
		gen := db.catalogGen + 1
		info := CheckpointInfo{Dir: db.dir, CatalogGen: gen, LSN: cut, FS: db.fs, Fault: db.ckptFault}
		for _, hook := range db.preCkpt {
			if err := hook(info); err != nil {
				return err
			}
		}
		if !db.opts.NoDerivedSnapshot {
			if err := db.saveDerivedLocked(gen, cut); err != nil {
				return err
			}
		}
		if err := db.saveCatalogLocked(gen); err != nil {
			return err
		}
		db.catalogGen = gen
	}
	if db.wal != nil {
		return db.wal.checkpointTo(cut, db.ckptFault)
	}
	return nil
}

// Close checkpoints and releases all resources.
func (db *DB) Close() error {
	if err := db.Checkpoint(); err != nil {
		return err
	}
	if db.wal != nil {
		if err := db.wal.Close(); err != nil {
			return err
		}
	}
	return db.disk.Close()
}

// CloseDiscard releases file handles without checkpointing or flushing —
// the "process died" close.  Tests use it to materialise a crash;
// read-only opens (benchmark reopen loops) use it to avoid paying a
// checkpoint for a store they never mutated.  Anything not already
// durable is lost, exactly as in a crash.
func (db *DB) CloseDiscard() error {
	if db.wal != nil {
		db.wal.closeFile()
	}
	return db.disk.Close()
}

// Table is a heap of rows plus secondary indexes.  Reads take a shared
// lock; mutations take an exclusive lock (table-level locking, which is
// what the paper's insert-heavy document workload needs — documents are
// written once and queried many times).
type Table struct {
	db   *DB
	name string

	// mu is the table-level lock.  netmarkvet:lockorder 20
	mu     sync.RWMutex
	schema Schema
	// heap's row/free meta rides in the derived snapshot; dropping it
	// from either codec path silently degrades reopen to a full scan.
	// netmarkvet:snap
	heap *HeapFile
	// indexes is mutated by CreateIndex while queries resolve index
	// names.  Guarded by mu.  netmarkvet:snap
	indexes map[string]*Index
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// writable rejects mutations while the store is degraded (nil db — a
// bare table in tests — never degrades).
func (t *Table) writable() error {
	if t.db == nil {
		return nil
	}
	return t.db.Writable()
}

// noteIfIOFault degrades the store when a mutation failed because of
// the device (not because of a logical error), then passes err through.
func (t *Table) noteIfIOFault(op string, err error) error {
	if err != nil && t.db != nil && IsIOFault(err) {
		t.db.noteWriteError(op, err)
	}
	return err
}

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// Rows returns the live row count.
func (t *Table) Rows() int64 { return t.heap.Rows() }

// Insert validates and stores a row, returning its physical RowID.
//
// netmarkvet:mutates
func (t *Table) Insert(row Row) (RowID, error) {
	if err := t.schema.Validate(row); err != nil {
		return ZeroRowID, err
	}
	if err := t.writable(); err != nil {
		return ZeroRowID, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rid, err := t.heap.Insert(EncodeRow(row))
	if err != nil {
		return ZeroRowID, t.noteIfIOFault("insert", err)
	}
	for _, ix := range t.indexes {
		ix.insert(row, rid)
	}
	return rid, nil
}

// InsertPrepared stores a row whose record the caller has already
// encoded (rec must equal EncodeRow(row)), moving the encoding cost off
// the table's write lock.  The batch-ingest pipeline encodes rows in its
// parse workers and feeds them here through the single writer.
//
// netmarkvet:mutates
func (t *Table) InsertPrepared(row Row, rec []byte) (RowID, error) {
	if err := t.schema.Validate(row); err != nil {
		return ZeroRowID, err
	}
	if err := t.writable(); err != nil {
		return ZeroRowID, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rid, err := t.heap.Insert(rec)
	if err != nil {
		return ZeroRowID, t.noteIfIOFault("insert", err)
	}
	for _, ix := range t.indexes {
		ix.insert(row, rid)
	}
	return rid, nil
}

// UpdateInPlace rewrites the record at rid with a pre-encoded record of
// the same encoded layout whose indexed columns are unchanged — the fast
// path for the XML store's link patches, which touch only fixed-width
// unindexed columns.  It skips the fetch/decode/re-encode and index
// diffing of Update; the caller owns those invariants.
//
// netmarkvet:mutates
func (t *Table) UpdateInPlace(rid RowID, rec []byte) error {
	if err := t.writable(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.noteIfIOFault("update", t.heap.Update(rid, rec))
}

// Fetch returns the row at rid.  The row is decoded directly from the
// latched page — no intermediate record copy — because Decode copies
// every payload anyway.
func (t *Table) Fetch(rid RowID) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var row Row
	err := t.heap.View(rid, func(rec []byte) error {
		var derr error
		row, derr = DecodeRow(rec)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return row, nil
}

// FetchView invokes fn with the raw record bytes at rid under the table's
// shared lock and the page read latch.  It is the cheapest read path:
// callers with a fixed schema decode straight into stack storage with
// DecodeRowInto, paying zero per-fetch heap allocations inside the
// engine.  fn must not retain rec, block, or call back into the table.
//
// netmarkvet:hotpath
func (t *Table) FetchView(rid RowID, fn func(rec []byte) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.View(rid, fn)
}

// FetchMany fetches and decodes many rows under a single shared-lock
// acquisition, reusing the page pin across consecutive rids on the same
// page — the batched analogue of Fetch for traversal kernels that already
// hold a sorted rid list.  out[i] is nil when rid i's record was deleted
// (readers racing a document delete skip those rows); any other error
// aborts the batch.
func (t *Table) FetchMany(rids []RowID) ([]Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rows := make([]Row, len(rids))
	err := t.heap.ViewMany(rids, func(i int, rec []byte) error {
		row, derr := DecodeRow(rec)
		if derr != nil {
			return derr
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Delete removes the row at rid and its index entries.
//
// netmarkvet:mutates
func (t *Table) Delete(rid RowID) error {
	if err := t.writable(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, err := t.heap.Fetch(rid)
	if err != nil {
		return err
	}
	row, err := DecodeRow(rec)
	if err != nil {
		return err
	}
	if err := t.heap.Delete(rid); err != nil {
		return t.noteIfIOFault("delete", err)
	}
	for _, ix := range t.indexes {
		ix.remove(row, rid)
	}
	return nil
}

// Update rewrites the row at rid in place.  The encoded row must not be
// larger than the stored record (link patches in the XML store keep
// fixed-width columns first, so this holds in practice).
//
// netmarkvet:mutates
func (t *Table) Update(rid RowID, row Row) error {
	if err := t.schema.Validate(row); err != nil {
		return err
	}
	if err := t.writable(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	oldRec, err := t.heap.Fetch(rid)
	if err != nil {
		return err
	}
	oldRow, err := DecodeRow(oldRec)
	if err != nil {
		return err
	}
	if err := t.heap.Update(rid, EncodeRow(row)); err != nil {
		return t.noteIfIOFault("update", err)
	}
	for _, ix := range t.indexes {
		if !oldRow[ix.colIdx].Equal(row[ix.colIdx]) {
			ix.remove(oldRow, rid)
			ix.insert(row, rid)
		}
	}
	return nil
}

// Scan iterates all rows in physical order.
func (t *Table) Scan(fn func(rid RowID, row Row) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var derr error
	err := t.heap.Scan(func(rid RowID, rec []byte) bool {
		row, e := DecodeRow(rec)
		if e != nil {
			derr = e
			return false
		}
		return fn(rid, row)
	})
	if derr != nil {
		return derr
	}
	return err
}

// CreateIndex builds a secondary index on the named column.
func (t *Table) CreateIndex(column string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.buildIndexLocked(column); err != nil {
		return err
	}
	if t.db != nil && t.db.wal != nil {
		t.db.wal.LogCreateIndex(t.name, column)
	}
	return nil
}

// buildIndexLocked creates and populates an index.  Caller holds t.mu.
func (t *Table) buildIndexLocked(column string) error {
	if _, dup := t.indexes[column]; dup {
		return fmt.Errorf("ordbms: index on %s.%s already exists", t.name, column)
	}
	ci := t.schema.ColIndex(column)
	if ci < 0 {
		return fmt.Errorf("ordbms: no column %q in table %s", column, t.name)
	}
	ix := newIndex(column, ci)
	var derr error
	err := t.heap.Scan(func(rid RowID, rec []byte) bool {
		row, e := DecodeRow(rec)
		if e != nil {
			derr = e
			return false
		}
		ix.insert(row, rid)
		return true
	})
	if err != nil {
		return err
	}
	if derr != nil {
		return derr
	}
	t.indexes[column] = ix
	return nil
}

// Index returns the index on column, or nil.
func (t *Table) Index(column string) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[column]
}

// Lookup uses the index on column for an equality probe, fetching rows.
func (t *Table) Lookup(column string, v Value) ([]RowID, error) {
	ix := t.Index(column)
	if ix == nil {
		return nil, fmt.Errorf("ordbms: no index on %s.%s", t.name, column)
	}
	return ix.Lookup(v), nil
}
