package ordbms

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Options configures a database instance.
type Options struct {
	// Dir is the directory holding the data file, WAL and catalog.
	// Empty means a volatile in-memory store with no logging.
	Dir string
	// PoolPages caps the buffer pool (default 4096 pages = 32 MiB).
	PoolPages int
	// SyncOnCommit forces an fsync of the WAL on every Commit call.
	// Defaults to true for durable stores.
	NoSyncOnCommit bool
}

// DB is the database engine facade: a disk manager, buffer pool, WAL and a
// set of tables.
type DB struct {
	mu   sync.RWMutex
	opts Options
	dir  string
	disk DiskManager
	pool *BufferPool
	wal  *WAL

	tables map[string]*Table

	// Replayed reports how many WAL records crash recovery applied when
	// the store was opened (0 for clean shutdowns and fresh stores).
	Replayed int
}

// Open creates or reopens a database.
func Open(opts Options) (*DB, error) {
	if opts.PoolPages == 0 {
		opts.PoolPages = 4096
	}
	db := &DB{opts: opts, dir: opts.Dir, tables: make(map[string]*Table)}
	if opts.Dir == "" {
		db.disk = NewMemDisk()
		db.pool = NewBufferPool(db.disk, opts.PoolPages)
		return db, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ordbms: create dir: %w", err)
	}
	disk, err := OpenFileDisk(filepath.Join(opts.Dir, "data.nmdb"))
	if err != nil {
		return nil, err
	}
	wal, err := OpenWAL(filepath.Join(opts.Dir, "wal.nmlog"))
	if err != nil {
		disk.Close()
		return nil, err
	}
	db.disk = disk
	db.wal = wal
	db.pool = NewBufferPool(disk, opts.PoolPages)
	wal.AttachTo(db.pool)
	replayed, err := Recover(disk, db.pool, wal)
	if err != nil {
		wal.Close()
		disk.Close()
		return nil, fmt.Errorf("ordbms: recovery failed: %w", err)
	}
	db.Replayed = replayed
	if err := db.loadCatalog(); err != nil {
		wal.Close()
		disk.Close()
		return nil, err
	}
	return db, nil
}

// InMemory reports whether the store is volatile.
func (db *DB) InMemory() bool { return db.dir == "" }

// Pool exposes the buffer pool for stats.
func (db *DB) Pool() *BufferPool { return db.pool }

// CreateTable registers a new table.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("ordbms: empty table name")
	}
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("ordbms: table %q already exists", name)
	}
	t := &Table{
		db:      db,
		name:    name,
		schema:  schema,
		heap:    NewHeapFile(db.pool, db.wal),
		indexes: make(map[string]*Index),
	}
	db.tables[name] = t
	return t, nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// DropTable removes a table.  Its pages are abandoned (vacuum is a
// non-goal for the reproduction).
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("ordbms: no table %q", name)
	}
	delete(db.tables, name)
	return nil
}

// TableNames lists tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tableNamesLocked()
}

func (db *DB) tableNamesLocked() []string {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Commit makes all mutations so far durable: the WAL is flushed (and
// fsynced unless disabled).  Concurrent commits coalesce into one fsync
// (WAL group commit).  In-memory stores are a no-op.
func (db *DB) Commit() error {
	if db.wal == nil {
		return nil
	}
	if db.opts.NoSyncOnCommit {
		return db.wal.Flush(db.wal.NextLSN())
	}
	return db.wal.Sync()
}

// WALStats returns (records appended, fsyncs issued), both zero for
// in-memory stores.  Group-commit batching shows up as syncs growing per
// batch while appends grow per record.
func (db *DB) WALStats() (appends, syncs uint64) {
	if db.wal == nil {
		return 0, 0
	}
	return db.wal.Appends(), db.wal.Syncs()
}

// Checkpoint flushes all pages, persists the catalog, and truncates the
// WAL.  After a checkpoint, reopening replays nothing.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal != nil {
		if err := db.wal.Sync(); err != nil {
			return err
		}
	}
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	if err := db.saveCatalogLocked(); err != nil {
		return err
	}
	if db.wal != nil {
		return db.wal.Checkpoint()
	}
	return nil
}

// Close checkpoints and releases all resources.
func (db *DB) Close() error {
	if err := db.Checkpoint(); err != nil {
		return err
	}
	if db.wal != nil {
		if err := db.wal.Close(); err != nil {
			return err
		}
	}
	return db.disk.Close()
}

// Table is a heap of rows plus secondary indexes.  Reads take a shared
// lock; mutations take an exclusive lock (table-level locking, which is
// what the paper's insert-heavy document workload needs — documents are
// written once and queried many times).
type Table struct {
	db   *DB
	name string

	mu      sync.RWMutex
	schema  Schema
	heap    *HeapFile
	indexes map[string]*Index
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// Rows returns the live row count.
func (t *Table) Rows() int64 { return t.heap.Rows() }

// Insert validates and stores a row, returning its physical RowID.
func (t *Table) Insert(row Row) (RowID, error) {
	if err := t.schema.Validate(row); err != nil {
		return ZeroRowID, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rid, err := t.heap.Insert(EncodeRow(row))
	if err != nil {
		return ZeroRowID, err
	}
	for _, ix := range t.indexes {
		ix.insert(row, rid)
	}
	return rid, nil
}

// InsertPrepared stores a row whose record the caller has already
// encoded (rec must equal EncodeRow(row)), moving the encoding cost off
// the table's write lock.  The batch-ingest pipeline encodes rows in its
// parse workers and feeds them here through the single writer.
func (t *Table) InsertPrepared(row Row, rec []byte) (RowID, error) {
	if err := t.schema.Validate(row); err != nil {
		return ZeroRowID, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rid, err := t.heap.Insert(rec)
	if err != nil {
		return ZeroRowID, err
	}
	for _, ix := range t.indexes {
		ix.insert(row, rid)
	}
	return rid, nil
}

// UpdateInPlace rewrites the record at rid with a pre-encoded record of
// the same encoded layout whose indexed columns are unchanged — the fast
// path for the XML store's link patches, which touch only fixed-width
// unindexed columns.  It skips the fetch/decode/re-encode and index
// diffing of Update; the caller owns those invariants.
func (t *Table) UpdateInPlace(rid RowID, rec []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.heap.Update(rid, rec)
}

// Fetch returns the row at rid.  The row is decoded directly from the
// latched page — no intermediate record copy — because Decode copies
// every payload anyway.
func (t *Table) Fetch(rid RowID) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var row Row
	err := t.heap.View(rid, func(rec []byte) error {
		var derr error
		row, derr = DecodeRow(rec)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return row, nil
}

// FetchView invokes fn with the raw record bytes at rid under the table's
// shared lock and the page read latch.  It is the cheapest read path:
// callers with a fixed schema decode straight into stack storage with
// DecodeRowInto, paying zero per-fetch heap allocations inside the
// engine.  fn must not retain rec, block, or call back into the table.
func (t *Table) FetchView(rid RowID, fn func(rec []byte) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.View(rid, fn)
}

// FetchMany fetches and decodes many rows under a single shared-lock
// acquisition, reusing the page pin across consecutive rids on the same
// page — the batched analogue of Fetch for traversal kernels that already
// hold a sorted rid list.  out[i] is nil when rid i's record was deleted
// (readers racing a document delete skip those rows); any other error
// aborts the batch.
func (t *Table) FetchMany(rids []RowID) ([]Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rows := make([]Row, len(rids))
	err := t.heap.ViewMany(rids, func(i int, rec []byte) error {
		row, derr := DecodeRow(rec)
		if derr != nil {
			return derr
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Delete removes the row at rid and its index entries.
func (t *Table) Delete(rid RowID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, err := t.heap.Fetch(rid)
	if err != nil {
		return err
	}
	row, err := DecodeRow(rec)
	if err != nil {
		return err
	}
	if err := t.heap.Delete(rid); err != nil {
		return err
	}
	for _, ix := range t.indexes {
		ix.remove(row, rid)
	}
	return nil
}

// Update rewrites the row at rid in place.  The encoded row must not be
// larger than the stored record (link patches in the XML store keep
// fixed-width columns first, so this holds in practice).
func (t *Table) Update(rid RowID, row Row) error {
	if err := t.schema.Validate(row); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	oldRec, err := t.heap.Fetch(rid)
	if err != nil {
		return err
	}
	oldRow, err := DecodeRow(oldRec)
	if err != nil {
		return err
	}
	if err := t.heap.Update(rid, EncodeRow(row)); err != nil {
		return err
	}
	for _, ix := range t.indexes {
		if !oldRow[ix.colIdx].Equal(row[ix.colIdx]) {
			ix.remove(oldRow, rid)
			ix.insert(row, rid)
		}
	}
	return nil
}

// Scan iterates all rows in physical order.
func (t *Table) Scan(fn func(rid RowID, row Row) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var derr error
	err := t.heap.Scan(func(rid RowID, rec []byte) bool {
		row, e := DecodeRow(rec)
		if e != nil {
			derr = e
			return false
		}
		return fn(rid, row)
	})
	if derr != nil {
		return derr
	}
	return err
}

// CreateIndex builds a secondary index on the named column.
func (t *Table) CreateIndex(column string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buildIndex(column)
}

// buildIndex creates and populates an index.  Caller holds t.mu.
func (t *Table) buildIndex(column string) error {
	if _, dup := t.indexes[column]; dup {
		return fmt.Errorf("ordbms: index on %s.%s already exists", t.name, column)
	}
	ci := t.schema.ColIndex(column)
	if ci < 0 {
		return fmt.Errorf("ordbms: no column %q in table %s", column, t.name)
	}
	ix := newIndex(column, ci)
	var derr error
	err := t.heap.Scan(func(rid RowID, rec []byte) bool {
		row, e := DecodeRow(rec)
		if e != nil {
			derr = e
			return false
		}
		ix.insert(row, rid)
		return true
	})
	if err != nil {
		return err
	}
	if derr != nil {
		return derr
	}
	t.indexes[column] = ix
	return nil
}

// Index returns the index on column, or nil.
func (t *Table) Index(column string) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[column]
}

// Lookup uses the index on column for an equality probe, fetching rows.
func (t *Table) Lookup(column string, v Value) ([]RowID, error) {
	ix := t.Index(column)
	if ix == nil {
		return nil, fmt.Errorf("ordbms: no index on %s.%s", t.name, column)
	}
	return ix.Lookup(v), nil
}
