package ordbms

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"testing/quick"
)

// Property: a heap behaves exactly like a reference map across random
// insert/delete/update workloads — every live record reads back byte-
// identical, every deleted record reports ErrRecordDeleted.
func TestQuickHeapAgainstReference(t *testing.T) {
	f := func(ops []uint16) bool {
		h := NewHeapFile(NewBufferPool(NewMemDisk(), 64), nil)
		ref := make(map[RowID][]byte)
		var order []RowID
		for i, op := range ops {
			switch op % 4 {
			case 0, 1: // insert (weighted)
				n := int(op)%300 + 1
				rec := bytes.Repeat([]byte{byte(i)}, n)
				rid, err := h.Insert(rec)
				if err != nil {
					return false
				}
				if _, dup := ref[rid]; dup {
					return false // RowID reuse while live is corruption
				}
				ref[rid] = rec
				order = append(order, rid)
			case 2: // delete a random live record
				if len(order) == 0 {
					continue
				}
				rid := order[int(op/4)%len(order)]
				if _, live := ref[rid]; !live {
					continue
				}
				if err := h.Delete(rid); err != nil {
					return false
				}
				delete(ref, rid)
			case 3: // shrink-update a random live record
				if len(order) == 0 {
					continue
				}
				rid := order[int(op/4)%len(order)]
				old, live := ref[rid]
				if !live || len(old) < 2 {
					continue
				}
				upd := old[:len(old)/2]
				if err := h.Update(rid, upd); err != nil {
					return false
				}
				ref[rid] = upd
			}
		}
		// Verify all state.
		for rid, want := range ref {
			got, err := h.Fetch(rid)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		if h.Rows() != int64(len(ref)) {
			return false
		}
		// Scan agrees with the reference too.
		seen := 0
		h.Scan(func(rid RowID, rec []byte) bool {
			want, live := ref[rid]
			if !live || !bytes.Equal(rec, want) {
				seen = -1 << 30
				return false
			}
			seen++
			return true
		})
		return seen == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: index lookups agree with full scans for every key after a
// random workload.
func TestQuickIndexMatchesScan(t *testing.T) {
	f := func(keys []uint8, deletes []uint8) bool {
		db, err := Open(Options{})
		if err != nil {
			return false
		}
		defer db.Close()
		tbl, err := db.CreateTable("t", MustSchema(Column{"k", TypeInt}, Column{"seq", TypeInt}))
		if err != nil {
			return false
		}
		if err := tbl.CreateIndex("k"); err != nil {
			return false
		}
		var rids []RowID
		for i, k := range keys {
			rid, err := tbl.Insert(Row{I(int64(k % 16)), I(int64(i))})
			if err != nil {
				return false
			}
			rids = append(rids, rid)
		}
		for _, d := range deletes {
			if len(rids) == 0 {
				break
			}
			idx := int(d) % len(rids)
			_ = tbl.Delete(rids[idx]) // double deletes are fine
		}
		for k := int64(0); k < 16; k++ {
			viaIndex, err := tbl.Lookup("k", I(k))
			if err != nil {
				return false
			}
			viaScan := 0
			tbl.Scan(func(_ RowID, row Row) bool {
				if row[0].Int == k {
					viaScan++
				}
				return true
			})
			if len(viaIndex) != viaScan {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertUnlogged(b *testing.B) {
	db, _ := Open(Options{})
	defer db.Close()
	tbl, _ := db.CreateTable("t", MustSchema(Column{"v", TypeString}))
	row := Row{S("a typical short document node payload for sizing")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Insert(row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertLoggedNoSync(b *testing.B) {
	db, err := Open(Options{Dir: b.TempDir(), NoSyncOnCommit: true})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t", MustSchema(Column{"v", TypeString}))
	row := Row{S("a typical short document node payload for sizing")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Insert(row); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	db.Commit()
}

func BenchmarkCommitGroup(b *testing.B) {
	// Group commit: 100 inserts per durable commit.
	db, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t", MustSchema(Column{"v", TypeString}))
	row := Row{S("payload")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			if _, err := tbl.Insert(row); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetchHot(b *testing.B) {
	db, _ := Open(Options{})
	defer db.Close()
	tbl, _ := db.CreateTable("t", MustSchema(Column{"v", TypeInt}))
	var rids []RowID
	for i := 0; i < 10000; i++ {
		rid, _ := tbl.Insert(Row{I(int64(i))})
		rids = append(rids, rid)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Fetch(rids[i%len(rids)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecovery(b *testing.B) {
	// Measure replaying a 5k-record WAL.
	dir := b.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", MustSchema(Column{"v", TypeInt}))
	for i := 0; i < 5000; i++ {
		tbl.Insert(Row{I(int64(i))})
	}
	db.Commit()
	db.mu.Lock()
	db.saveCatalogLocked(db.catalogGen + 1)
	db.mu.Unlock()
	// Crash (no checkpoint).  Copy the dirty state per iteration is
	// expensive; instead reopen+checkpoint once and measure a single
	// replay per iteration over progressively clean stores is wrong.
	// So: measure the first reopen only, with b.N=1 semantics.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Rebuild the crashed state.
		src := fmt.Sprintf("%s-%d", dir, i)
		copyDir(b, dir, src)
		b.StartTimer()
		db2, err := Open(Options{Dir: src})
		if err != nil {
			b.Fatal(err)
		}
		if db2.Replayed == 0 && i == 0 {
			b.Fatal("nothing replayed; crash state not reproduced")
		}
		b.StopTimer()
		db2.Close()
		b.StartTimer()
	}
}

func copyDir(b *testing.B, from, to string) {
	b.Helper()
	if err := os.MkdirAll(to, 0o755); err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"data.nmdb", "wal.nmlog", "catalog.json"} {
		data, err := os.ReadFile(from + "/" + name)
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(to+"/"+name, data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
