package ordbms

// The derived snapshot (derived.nmds) persists the engine's own derived
// state — per-heap row counts and free-space maps, and the full contents
// of every secondary index — so reopening a store does not pay a heap
// scan per table.  The heap pages stay the durable truth: the snapshot
// is written only at checkpoints, stamped with the catalog generation
// and the WAL LSN the checkpoint truncates through, and is trusted on
// open only when those stamps still match and recovery replayed nothing.
// Any mismatch (crash mid-checkpoint, mutations after the checkpoint,
// corruption, version skew) silently falls back to the scan rebuild.
//
// File layout: magic(8) version(4) crc32-of-payload(4) payloadLen(8)
// payload.  The payload is varint-packed, tables and index columns in
// sorted order, index keys in tree order.

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"path/filepath"
	"sort"

	"netmark/internal/btree"
)

const (
	derivedName    = "derived.nmds"
	derivedVersion = 1
)

var derivedMagic = [8]byte{'N', 'M', 'D', 'E', 'R', 'V', '1', 0}

// saveDerivedLocked serialises heap metadata and index contents for all
// tables and writes the snapshot atomically (temp + fsync + rename +
// dir fsync).  Caller holds db.mu; each table's read lock is taken while
// that table is serialised, so writers racing the checkpoint append WAL
// records past the cut LSN and invalidate the snapshot rather than
// tearing it.
//
// netmarkvet:snap-encode
func (db *DB) saveDerivedLocked(gen, lsn uint64) error {
	if db.dir == "" {
		return nil
	}
	buf := make([]byte, 0, 1<<16)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	names := db.tableNamesLocked()
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		t := db.tables[name]
		t.mu.RLock()
		buf = appendSnapString(buf, name)
		rows, free := t.heap.Meta()
		buf = binary.AppendUvarint(buf, uint64(rows))
		pages := make([]uint32, 0, len(free))
		for p := range free {
			pages = append(pages, p)
		}
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		buf = binary.AppendUvarint(buf, uint64(len(pages)))
		for _, p := range pages {
			buf = binary.AppendUvarint(buf, uint64(p))
			buf = binary.AppendUvarint(buf, uint64(free[p]))
		}
		cols := make([]string, 0, len(t.indexes))
		for c := range t.indexes {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		buf = binary.AppendUvarint(buf, uint64(len(cols)))
		for _, c := range cols {
			ix := t.indexes[c]
			buf = appendSnapString(buf, c)
			buf = binary.AppendUvarint(buf, uint64(ix.tree.Keys()))
			ix.tree.Ascend(func(v Value, rids []RowID) bool {
				buf = appendSnapValue(buf, v)
				buf = binary.AppendUvarint(buf, uint64(len(rids)))
				for _, rid := range rids {
					buf = binary.AppendUvarint(buf, rid.Uint64())
				}
				return true
			})
		}
		t.mu.RUnlock()
	}

	out := make([]byte, 0, len(buf)+24)
	out = append(out, derivedMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, derivedVersion)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(buf))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(buf)))
	out = append(out, buf...)

	ci := CheckpointInfo{Dir: db.dir, FS: db.fs, Fault: db.ckptFault}
	return ci.WriteSnapshotFile(derivedName, out, "derived")
}

// derivedSnapshot is the decoded snapshot, keyed by table name.
type derivedSnapshot struct {
	tables map[string]*derivedTable
}

type derivedTable struct {
	rows    int64
	free    map[uint32]int
	indexes map[string][]derivedKey
}

type derivedKey struct {
	v    Value
	rids []RowID
}

// loadDerivedSnapshot reads and validates the snapshot.  It returns nil
// — caller falls back to heap scans — when the file is missing, corrupt,
// version-skewed, disabled, or stale (stamps do not match the catalog
// generation and WAL base, or recovery applied records after it).
//
// netmarkvet:snap-decode
func (db *DB) loadDerivedSnapshot(gen uint64) *derivedSnapshot {
	if db.dir == "" || db.opts.NoDerivedSnapshot || db.wal == nil || db.Replayed != 0 {
		return nil
	}
	data, err := db.fs.ReadFile(filepath.Join(db.dir, derivedName))
	if err != nil {
		return nil
	}
	if len(data) < 24 || [8]byte(data[:8]) != derivedMagic {
		return nil
	}
	if binary.LittleEndian.Uint32(data[8:12]) != derivedVersion {
		return nil
	}
	crc := binary.LittleEndian.Uint32(data[12:16])
	if binary.LittleEndian.Uint64(data[16:24]) != uint64(len(data)-24) {
		return nil
	}
	payload := data[24:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil
	}
	r := &snapReader{b: payload}
	if r.u64() != gen || r.u64() != db.walEndAtOpen {
		return nil
	}
	ds := &derivedSnapshot{tables: make(map[string]*derivedTable)}
	for nt := r.uvarint(); nt > 0; nt-- {
		name := r.str()
		dt := &derivedTable{free: make(map[uint32]int), indexes: make(map[string][]derivedKey)}
		dt.rows = int64(r.uvarint())
		for nf := r.uvarint(); nf > 0; nf-- {
			p := uint32(r.uvarint())
			dt.free[p] = int(r.uvarint())
		}
		for nc := r.uvarint(); nc > 0; nc-- {
			col := r.str()
			nk := r.uvarint()
			if nk > uint64(len(r.b)) { // every key costs >= 1 byte
				return nil
			}
			keys := make([]derivedKey, 0, nk)
			for ; nk > 0; nk-- {
				var dk derivedKey
				dk.v = r.value()
				n := r.uvarint()
				if n > uint64(len(r.b)) {
					return nil
				}
				dk.rids = make([]RowID, n)
				for i := range dk.rids {
					dk.rids[i] = RowIDFromUint64(r.uvarint())
				}
				keys = append(keys, dk)
			}
			dt.indexes[col] = keys
		}
		if r.failed {
			return nil
		}
		ds.tables[name] = dt
	}
	if r.failed || r.off != len(r.b) {
		return nil
	}
	return ds
}

// openTable builds a Table from the snapshot, or reports false when the
// snapshot does not cover this table (caller falls back to scans).
//
// netmarkvet:snap-decode
func (ds *derivedSnapshot) openTable(db *DB, ct catalogTable, schema Schema) (*Table, bool) {
	dt, ok := ds.tables[ct.Name]
	if !ok {
		return nil, false
	}
	for _, col := range ct.Indexes {
		if _, ok := dt.indexes[col]; !ok {
			return nil, false
		}
	}
	t := &Table{
		db:      db,
		name:    ct.Name,
		schema:  schema,
		heap:    OpenHeapFileWithMeta(db.pool, db.wal, ct.Pages, dt.rows, dt.free),
		indexes: make(map[string]*Index),
	}
	for _, col := range ct.Indexes {
		ci := schema.ColIndex(col)
		if ci < 0 {
			return nil, false
		}
		// Keys were serialised in tree order, so the O(n) bulk builder
		// replaces n log n re-insertion.
		b := btree.NewBuilder[Value, RowID](func(a, b Value) int { return a.Compare(b) }, btree.DefaultOrder)
		for _, dk := range dt.indexes[col] {
			b.Append(dk.v, dk.rids)
		}
		t.indexes[col] = &Index{Column: col, colIdx: ci, tree: b.Tree()}
	}
	return t, true
}

// appendSnapString appends a length-prefixed string.
func appendSnapString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendSnapValue appends a type-tagged index key.
func appendSnapValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.Type))
	switch v.Type {
	case TypeInt:
		buf = binary.AppendVarint(buf, v.Int)
	case TypeFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float))
	case TypeString:
		buf = appendSnapString(buf, v.Str)
	case TypeBytes:
		buf = binary.AppendUvarint(buf, uint64(len(v.Bytes)))
		buf = append(buf, v.Bytes...)
	case TypeBool:
		if v.Bool {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// snapReader is a cursor over a snapshot payload.  Any decode past the
// end or malformed varint sets failed; callers check it once at the end
// (the CRC makes mid-payload corruption vanishingly unlikely, so the
// flag mostly guards against version-skew bugs).
type snapReader struct {
	b      []byte
	off    int
	failed bool
}

func (r *snapReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.failed = true
		return 0
	}
	r.off += n
	return v
}

func (r *snapReader) varint() int64 {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.failed = true
		return 0
	}
	r.off += n
	return v
}

func (r *snapReader) u64() uint64 {
	if r.off+8 > len(r.b) {
		r.failed = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *snapReader) byte() byte {
	if r.off >= len(r.b) {
		r.failed = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *snapReader) take(n int) []byte {
	if n < 0 || r.off+n > len(r.b) {
		r.failed = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *snapReader) str() string {
	return string(r.take(int(r.uvarint())))
}

func (r *snapReader) value() Value {
	switch Type(r.byte()) {
	case TypeNull:
		return Null()
	case TypeInt:
		return I(r.varint())
	case TypeFloat:
		return F(math.Float64frombits(r.u64()))
	case TypeString:
		return S(r.str())
	case TypeBytes:
		return B(append([]byte(nil), r.take(int(r.uvarint()))...))
	case TypeBool:
		return Bl(r.byte() != 0)
	default:
		r.failed = true
		return Null()
	}
}
