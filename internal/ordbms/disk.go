package ordbms

import (
	"fmt"
	"os"
	"sync"

	"netmark/internal/vfs"
)

// DiskManager provides page-granular storage.  Two implementations exist:
// a file-backed manager for durable stores and an in-memory manager for
// tests and benchmarks.
type DiskManager interface {
	// AllocatePage reserves a new page and returns its number.  Page 0 is
	// never allocated; it is reserved so that RowID{0,0} can act as nil.
	AllocatePage() (uint32, error)
	ReadPage(no uint32, buf []byte) error
	WritePage(no uint32, buf []byte) error
	NumPages() uint32
	Sync() error
	Close() error
}

// memDisk is the in-memory DiskManager.
type memDisk struct {
	mu    sync.Mutex
	pages [][]byte // guarded by mu
}

// NewMemDisk returns an in-memory disk manager.
func NewMemDisk() DiskManager {
	// Index 0 is the reserved never-allocated page.
	return &memDisk{pages: make([][]byte, 1)}
}

func (d *memDisk) AllocatePage() (uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	no := uint32(len(d.pages))
	d.pages = append(d.pages, make([]byte, PageSize))
	return no, nil
}

func (d *memDisk) ReadPage(no uint32, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(no) >= len(d.pages) || no == 0 {
		return fmt.Errorf("ordbms: read of unallocated page %d", no)
	}
	copy(buf, d.pages[no])
	return nil
}

func (d *memDisk) WritePage(no uint32, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(no) >= len(d.pages) || no == 0 {
		return fmt.Errorf("ordbms: write of unallocated page %d", no)
	}
	copy(d.pages[no], buf)
	return nil
}

func (d *memDisk) NumPages() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return uint32(len(d.pages))
}

func (d *memDisk) Sync() error  { return nil }
func (d *memDisk) Close() error { return nil }

// fileDisk is the file-backed DiskManager.  Page n lives at byte offset
// n*PageSize.  Page 0 is reserved and holds a magic header.
type fileDisk struct {
	mu    sync.Mutex
	f     vfs.File
	pages uint32 // guarded by mu
}

const diskMagic = "NETMARKDB v1\x00\x00\x00\x00"

// OpenFileDisk opens (or creates) a file-backed disk manager, doing all
// file I/O through fsys.
func OpenFileDisk(fsys vfs.FS, path string) (DiskManager, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ordbms: open data file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	d := &fileDisk{f: f}
	size := st.Size()
	if rem := size % PageSize; rem != 0 {
		// A crash or I/O error mid-extension (ENOSPC short write, torn
		// append) leaves a partial page at the tail.  No acknowledged
		// state can live there — the extension errored or never reached
		// a commit — so discard it rather than refuse the whole store.
		size -= rem
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, fmt.Errorf("ordbms: drop torn data file tail: %w", err)
		}
	}
	if size == 0 {
		hdr := make([]byte, PageSize)
		copy(hdr, diskMagic)
		if _, err := f.WriteAt(hdr, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("ordbms: init data file: %w", err)
		}
		d.pages = 1
		return d, nil
	}
	hdr := make([]byte, len(diskMagic))
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	if string(hdr) != diskMagic {
		f.Close()
		return nil, fmt.Errorf("ordbms: %s is not a netmark data file", path)
	}
	d.pages = uint32(size / PageSize)
	return d, nil
}

func (d *fileDisk) AllocatePage() (uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	no := d.pages
	zero := make([]byte, PageSize)
	if _, err := d.f.WriteAt(zero, int64(no)*PageSize); err != nil {
		return 0, &IOFault{Op: "extend data file", Err: err}
	}
	d.pages++
	return no, nil
}

func (d *fileDisk) ReadPage(no uint32, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if no == 0 || no >= d.pages {
		return fmt.Errorf("ordbms: read of unallocated page %d", no)
	}
	_, err := d.f.ReadAt(buf[:PageSize], int64(no)*PageSize)
	return err
}

func (d *fileDisk) WritePage(no uint32, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if no == 0 || no >= d.pages {
		return fmt.Errorf("ordbms: write of unallocated page %d", no)
	}
	if _, err := d.f.WriteAt(buf[:PageSize], int64(no)*PageSize); err != nil {
		return &IOFault{Op: "write page", Err: err}
	}
	return nil
}

func (d *fileDisk) NumPages() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages
}

func (d *fileDisk) Sync() error {
	if err := d.f.Sync(); err != nil {
		return &IOFault{Op: "sync data file", Err: err}
	}
	return nil
}

func (d *fileDisk) Close() error { return d.f.Close() }
