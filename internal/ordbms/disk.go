package ordbms

import (
	"fmt"
	"os"
	"sync"
)

// DiskManager provides page-granular storage.  Two implementations exist:
// a file-backed manager for durable stores and an in-memory manager for
// tests and benchmarks.
type DiskManager interface {
	// AllocatePage reserves a new page and returns its number.  Page 0 is
	// never allocated; it is reserved so that RowID{0,0} can act as nil.
	AllocatePage() (uint32, error)
	ReadPage(no uint32, buf []byte) error
	WritePage(no uint32, buf []byte) error
	NumPages() uint32
	Sync() error
	Close() error
}

// memDisk is the in-memory DiskManager.
type memDisk struct {
	mu    sync.Mutex
	pages [][]byte // guarded by mu
}

// NewMemDisk returns an in-memory disk manager.
func NewMemDisk() DiskManager {
	// Index 0 is the reserved never-allocated page.
	return &memDisk{pages: make([][]byte, 1)}
}

func (d *memDisk) AllocatePage() (uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	no := uint32(len(d.pages))
	d.pages = append(d.pages, make([]byte, PageSize))
	return no, nil
}

func (d *memDisk) ReadPage(no uint32, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(no) >= len(d.pages) || no == 0 {
		return fmt.Errorf("ordbms: read of unallocated page %d", no)
	}
	copy(buf, d.pages[no])
	return nil
}

func (d *memDisk) WritePage(no uint32, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(no) >= len(d.pages) || no == 0 {
		return fmt.Errorf("ordbms: write of unallocated page %d", no)
	}
	copy(d.pages[no], buf)
	return nil
}

func (d *memDisk) NumPages() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return uint32(len(d.pages))
}

func (d *memDisk) Sync() error  { return nil }
func (d *memDisk) Close() error { return nil }

// fileDisk is the file-backed DiskManager.  Page n lives at byte offset
// n*PageSize.  Page 0 is reserved and holds a magic header.
type fileDisk struct {
	mu    sync.Mutex
	f     *os.File
	pages uint32 // guarded by mu
}

const diskMagic = "NETMARKDB v1\x00\x00\x00\x00"

// OpenFileDisk opens (or creates) a file-backed disk manager.
func OpenFileDisk(path string) (DiskManager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ordbms: open data file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	d := &fileDisk{f: f}
	if st.Size() == 0 {
		hdr := make([]byte, PageSize)
		copy(hdr, diskMagic)
		if _, err := f.WriteAt(hdr, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("ordbms: init data file: %w", err)
		}
		d.pages = 1
		return d, nil
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("ordbms: data file size %d not page aligned", st.Size())
	}
	hdr := make([]byte, len(diskMagic))
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	if string(hdr) != diskMagic {
		f.Close()
		return nil, fmt.Errorf("ordbms: %s is not a netmark data file", path)
	}
	d.pages = uint32(st.Size() / PageSize)
	return d, nil
}

func (d *fileDisk) AllocatePage() (uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	no := d.pages
	zero := make([]byte, PageSize)
	if _, err := d.f.WriteAt(zero, int64(no)*PageSize); err != nil {
		return 0, fmt.Errorf("ordbms: extend data file: %w", err)
	}
	d.pages++
	return no, nil
}

func (d *fileDisk) ReadPage(no uint32, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if no == 0 || no >= d.pages {
		return fmt.Errorf("ordbms: read of unallocated page %d", no)
	}
	_, err := d.f.ReadAt(buf[:PageSize], int64(no)*PageSize)
	return err
}

func (d *fileDisk) WritePage(no uint32, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if no == 0 || no >= d.pages {
		return fmt.Errorf("ordbms: write of unallocated page %d", no)
	}
	_, err := d.f.WriteAt(buf[:PageSize], int64(no)*PageSize)
	return err
}

func (d *fileDisk) NumPages() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages
}

func (d *fileDisk) Sync() error { return d.f.Sync() }

func (d *fileDisk) Close() error { return d.f.Close() }
