package ordbms

import "testing"

// FetchView + DecodeRowInto over an int-only row is the engine's
// declared zero-allocation read path: page pin on a resident page,
// latch, decode into caller stack storage.  Guard it.
func TestFetchViewDecodeIntoZeroAlloc(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema, err := NewSchema(
		Column{"a", TypeInt},
		Column{"b", TypeInt},
		Column{"c", TypeInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tbl.Insert(Row{I(7), I(11), I(13)})
	if err != nil {
		t.Fatal(err)
	}

	var cols [3]Value
	fetch := func() {
		err := tbl.FetchView(rid, func(rec []byte) error {
			return DecodeRowInto(rec, cols[:])
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	fetch() // page resident, buffers warm
	if n := testing.AllocsPerRun(500, fetch); n != 0 {
		t.Errorf("FetchView+DecodeRowInto = %.2f allocs/op, want 0", n)
	}
	if cols[0].Int != 7 || cols[2].Int != 13 {
		t.Fatalf("decoded row = %+v", cols)
	}
}
