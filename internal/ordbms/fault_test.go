package ordbms

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"

	"netmark/internal/vfs"
)

// faultDisk wraps a DiskManager and fails operations on command.
type faultDisk struct {
	mu         sync.Mutex
	inner      DiskManager
	failReads  bool
	failWrites bool
	writesLeft int // fail writes after this many succeed (-1 = off)
}

var errInjected = errors.New("injected I/O failure")

func newFaultDisk() *faultDisk {
	return &faultDisk{inner: NewMemDisk(), writesLeft: -1}
}

func (d *faultDisk) AllocatePage() (uint32, error) { return d.inner.AllocatePage() }

func (d *faultDisk) ReadPage(no uint32, buf []byte) error {
	d.mu.Lock()
	fail := d.failReads
	d.mu.Unlock()
	if fail {
		return errInjected
	}
	return d.inner.ReadPage(no, buf)
}

func (d *faultDisk) WritePage(no uint32, buf []byte) error {
	d.mu.Lock()
	if d.failWrites {
		d.mu.Unlock()
		return errInjected
	}
	if d.writesLeft == 0 {
		d.mu.Unlock()
		return errInjected
	}
	if d.writesLeft > 0 {
		d.writesLeft--
	}
	d.mu.Unlock()
	return d.inner.WritePage(no, buf)
}

func (d *faultDisk) NumPages() uint32 { return d.inner.NumPages() }
func (d *faultDisk) Sync() error      { return d.inner.Sync() }
func (d *faultDisk) Close() error     { return d.inner.Close() }

func TestReadFailureSurfacesCleanly(t *testing.T) {
	disk := newFaultDisk()
	pool := NewBufferPool(disk, 4) // tiny pool forces re-reads
	h := NewHeapFile(pool, nil)
	var rids []RowID
	for i := 0; i < 20; i++ {
		rid, err := h.Insert(make([]byte, 3000))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	// Touch pages so the first ones are evicted, then poison reads.
	disk.mu.Lock()
	disk.failReads = true
	disk.mu.Unlock()
	_, err := h.Fetch(rids[0])
	if !errors.Is(err, errInjected) {
		t.Fatalf("expected injected error, got %v", err)
	}
	// Recovery of the fault restores service.
	disk.mu.Lock()
	disk.failReads = false
	disk.mu.Unlock()
	if _, err := h.Fetch(rids[0]); err != nil {
		t.Fatalf("after fault cleared: %v", err)
	}
}

func TestEvictionWriteFailureDoesNotLoseData(t *testing.T) {
	disk := newFaultDisk()
	pool := NewBufferPool(disk, 4)
	h := NewHeapFile(pool, nil)
	// Fill beyond the pool so evictions happen; then make writes fail and
	// confirm the insert that needed an eviction reports the error
	// rather than silently dropping a dirty page.
	for i := 0; i < 8; i++ {
		if _, err := h.Insert(make([]byte, 5000)); err != nil {
			t.Fatal(err)
		}
	}
	disk.mu.Lock()
	disk.failWrites = true
	disk.mu.Unlock()
	_, err := h.Insert(make([]byte, 5000))
	if !errors.Is(err, errInjected) {
		t.Fatalf("eviction write failure swallowed: %v", err)
	}
	disk.mu.Lock()
	disk.failWrites = false
	disk.mu.Unlock()
	if _, err := h.Insert(make([]byte, 5000)); err != nil {
		t.Fatalf("after fault cleared: %v", err)
	}
}

// TestWALTornTailIgnored appends garbage to the log and verifies
// recovery stops at the corruption instead of failing or applying junk.
func TestWALTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", MustSchema(Column{"v", TypeInt}))
	for i := 0; i < 50; i++ {
		if _, err := tbl.Insert(Row{I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	db.mu.Lock()
	db.saveCatalogLocked(db.catalogGen + 1)
	db.mu.Unlock()
	// Crash, then corrupt the WAL tail.
	walPath := filepath.Join(dir, "wal.nmlog")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery choked on torn tail: %v", err)
	}
	defer db2.Close()
	if db2.Table("t").Rows() != 50 {
		t.Fatalf("rows = %d", db2.Table("t").Rows())
	}
}

// TestWALMidRecordCorruption flips a byte inside a committed record; the
// CRC must reject it and recovery must keep the prefix.
func TestWALMidRecordCorruption(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", MustSchema(Column{"v", TypeInt}))
	for i := 0; i < 50; i++ {
		tbl.Insert(Row{I(int64(i))})
	}
	db.Commit()
	db.mu.Lock()
	db.saveCatalogLocked(db.catalogGen + 1)
	db.mu.Unlock()

	walPath := filepath.Join(dir, "wal.nmlog")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte ~80% in: the first 80% of records stay valid.
	pos := walHeaderSize + (len(data)-walHeaderSize)*8/10
	data[pos] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery failed on mid-record corruption: %v", err)
	}
	defer db2.Close()
	rows := db2.Table("t").Rows()
	if rows == 0 || rows > 50 {
		t.Fatalf("rows after partial recovery = %d", rows)
	}
	// Rows that survived must read back intact and in prefix order.
	seen := int64(0)
	db2.Table("t").Scan(func(_ RowID, row Row) bool {
		if row[0].Int != seen {
			t.Fatalf("row %d has value %d", seen, row[0].Int)
		}
		seen++
		return true
	})
}

func TestBufferPoolExhaustionError(t *testing.T) {
	disk := NewMemDisk()
	pool := NewBufferPool(disk, 8)
	// Pin more pages than capacity without unpinning.
	var frames []*Frame
	for i := 0; i < 8; i++ {
		f, err := pool.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if _, err := pool.NewPage(); err == nil {
		t.Fatal("pool exhaustion not reported")
	}
	// Unpinning frees capacity again.
	pool.Unpin(frames[0], false)
	if _, err := pool.NewPage(); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestConcurrentTablesIndependent(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	const g = 6
	errc := make(chan error, g)
	for w := 0; w < g; w++ {
		go func(w int) {
			tbl, err := db.CreateTable(fmt.Sprintf("t%d", w), MustSchema(Column{"v", TypeInt}))
			if err != nil {
				errc <- err
				return
			}
			for i := 0; i < 100; i++ {
				if _, err := tbl.Insert(Row{I(int64(i))}); err != nil {
					errc <- err
					return
				}
			}
			if tbl.Rows() != 100 {
				errc <- fmt.Errorf("t%d rows = %d", w, tbl.Rows())
				return
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < g; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointCrashMatrix simulates a crash at every step of the
// checkpoint sequence — derived-snapshot write, catalog write, WAL
// truncation — and proves each aborted state recovers to the exact
// pre-crash contents, and that LSNs handed out after recovery never lag
// already-flushed page LSNs (the old truncate-before-header-rewrite bug:
// an empty log carrying the stale base made recovery skip the next
// session's records).
func TestCheckpointCrashMatrix(t *testing.T) {
	steps := []string{
		"derived-temp", "derived-rename",
		"catalog-temp", "catalog-rename",
		"wal-temp", "wal-rename",
	}
	for _, step := range steps {
		t.Run(step, func(t *testing.T) {
			dir := t.TempDir()
			db, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := db.CreateTable("t", MustSchema(Column{"v", TypeInt}))
			if err != nil {
				t.Fatal(err)
			}
			if err := tbl.CreateIndex("v"); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				if _, err := tbl.Insert(Row{I(int64(i))}); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("baseline checkpoint: %v", err)
			}
			for i := 40; i < 80; i++ {
				if _, err := tbl.Insert(Row{I(int64(i))}); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Commit(); err != nil {
				t.Fatal(err)
			}
			db.SetCheckpointFault(func(s string) error {
				if s == step {
					return errInjected
				}
				return nil
			})
			if err := db.Checkpoint(); !errors.Is(err, errInjected) {
				t.Fatalf("checkpoint survived the injected crash at %s: %v", step, err)
			}
			db.CloseDiscard() // the crash

			db2, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", step, err)
			}
			tbl2 := db2.Table("t")
			if tbl2 == nil || tbl2.Rows() != 80 {
				t.Fatalf("after crash at %s: rows = %v", step, tbl2.Rows())
			}
			for i := 0; i < 80; i++ {
				rids, err := tbl2.Lookup("v", I(int64(i)))
				if err != nil || len(rids) != 1 {
					t.Fatalf("after crash at %s: lookup %d -> %v, %v", step, i, rids, err)
				}
			}
			// LSN-regression guard: a fresh record must be replayable.  If
			// recovery handed out LSNs lagging flushed page LSNs, this
			// insert's record would be skipped on the next replay.
			if _, err := tbl2.Insert(Row{I(80)}); err != nil {
				t.Fatal(err)
			}
			if err := db2.Commit(); err != nil {
				t.Fatal(err)
			}
			db2.CloseDiscard() // crash again, before any checkpoint

			db3, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("second reopen: %v", err)
			}
			defer db3.Close()
			if got := db3.Table("t").Rows(); got != 81 {
				t.Fatalf("post-recovery insert lost: rows = %d, want 81 (LSN regression)", got)
			}
			if rids, err := db3.Table("t").Lookup("v", I(80)); err != nil || len(rids) != 1 {
				t.Fatalf("post-recovery insert unreadable: %v, %v", rids, err)
			}
		})
	}
}

// TestCheckpointKeepsConcurrentTail proves records appended while a
// checkpoint is in flight survive its WAL truncation: the truncate drops
// only records covered by the page flush, so a crash right after the
// checkpoint cannot lose a write that raced it.
func TestCheckpointKeepsConcurrentTail(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", MustSchema(Column{"v", TypeInt}))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("v"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tbl.Insert(Row{I(int64(i))})
	}
	db.Commit()
	// Sneak a write into the middle of the checkpoint (after the page
	// flush, before the WAL truncation) via the fault hook, then let the
	// checkpoint complete.
	raced := false
	db.SetCheckpointFault(func(step string) error {
		if step == "catalog-temp" && !raced {
			raced = true
			if _, err := tbl.Insert(Row{I(999)}); err != nil {
				t.Errorf("racing insert: %v", err)
			}
			if err := db.Commit(); err != nil {
				t.Errorf("racing commit: %v", err)
			}
		}
		return nil
	})
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !raced {
		t.Fatal("fault hook never fired")
	}
	db.CloseDiscard() // crash: the raced write's page never reached disk

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Replayed == 0 {
		t.Fatal("expected the raced record to survive truncation and replay")
	}
	if got := db2.Table("t").Rows(); got != 11 {
		t.Fatalf("raced write lost by checkpoint truncation: rows = %d, want 11", got)
	}
	if rids, err := db2.Table("t").Lookup("v", I(999)); err != nil || len(rids) != 1 {
		t.Fatalf("raced row unreadable: %v, %v", rids, err)
	}
}

// TestDerivedSnapshotReopen proves a clean close/reopen loads heap
// metadata and secondary indexes from the derived snapshot (no scans)
// and that the loaded state behaves identically to a scan rebuild.
func TestDerivedSnapshotReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", MustSchema(Column{"v", TypeInt}, Column{"s", TypeString}))
	tbl.CreateIndex("v")
	tbl.CreateIndex("s")
	var deleted RowID
	for i := 0; i < 200; i++ {
		rid, err := tbl.Insert(Row{I(int64(i)), S(fmt.Sprintf("row-%03d", i))})
		if err != nil {
			t.Fatal(err)
		}
		if i == 77 {
			deleted = rid
		}
	}
	if err := tbl.Delete(deleted); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	check := func(db *DB, wantDerived int) {
		t.Helper()
		if db.DerivedLoads != wantDerived {
			t.Fatalf("DerivedLoads = %d, want %d", db.DerivedLoads, wantDerived)
		}
		tbl := db.Table("t")
		if tbl.Rows() != 199 {
			t.Fatalf("rows = %d", tbl.Rows())
		}
		if rids, _ := tbl.Lookup("v", I(77)); len(rids) != 0 {
			t.Fatal("deleted row resurfaced in index")
		}
		if rids, _ := tbl.Lookup("s", S("row-123")); len(rids) != 1 {
			t.Fatal("string index lookup failed")
		}
		if rids := tbl.Index("s").Prefix("row-12"); len(rids) != 10 {
			t.Fatalf("prefix scan = %d rids, want 10", len(rids))
		}
		// The free-space map must still be usable: inserting lands rows
		// without corrupting pages.
		if _, err := tbl.Insert(Row{I(1000), S("post-reopen")}); err != nil {
			t.Fatal(err)
		}
		if rids, _ := tbl.Lookup("v", I(1000)); len(rids) != 1 {
			t.Fatal("post-reopen insert not indexed")
		}
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	check(db2, 1)
	db2.CloseDiscard()

	// Ablation: the same on-disk state opened with snapshots disabled
	// must scan-rebuild to identical answers.
	db3, err := Open(Options{Dir: dir, NoDerivedSnapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	check(db3, 0)
	db3.CloseDiscard()
}

// TestFreshStoreCrashBeforeFirstCheckpoint commits rows into tables that
// have never been checkpointed (no catalog entry exists at all), then
// crashes: the logged DDL (creates, index creates) plus page adoptions
// must rebuild the tables with every committed row.  Before DDL logging,
// recovery replayed the pages but no table claimed them, and the
// post-recovery checkpoint then truncated the log — permanent loss of
// durably committed data.
func TestFreshStoreCrashBeforeFirstCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", MustSchema(Column{"v", TypeInt}, Column{"s", TypeString}))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("v"); err != nil {
		t.Fatal(err)
	}
	// A second table that is created and dropped must not resurrect.
	if _, err := db.CreateTable("gone", MustSchema(Column{"x", TypeInt})); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("gone"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ { // enough rows to span several pages
		if _, err := tbl.Insert(Row{I(int64(i)), S(fmt.Sprintf("value-%04d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	db.CloseDiscard() // crash: no checkpoint ever ran, catalog.json absent

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Table("gone") != nil {
		t.Fatal("dropped table resurrected by recovery")
	}
	tbl2 := db2.Table("t")
	if tbl2 == nil {
		t.Fatal("table created before first checkpoint lost on crash")
	}
	if got := tbl2.Rows(); got != 300 {
		t.Fatalf("rows = %d, want 300 (committed rows lost)", got)
	}
	for _, i := range []int64{0, 150, 299} {
		rids, err := tbl2.Lookup("v", I(i))
		if err != nil || len(rids) != 1 {
			t.Fatalf("index lookup %d after recovery: %v, %v", i, rids, err)
		}
	}
	// The post-recovery checkpoint persisted the merged catalog: a second
	// crash (WAL now truncated) must still reopen to the same state.
	db2.CloseDiscard()
	db3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if db3.Replayed != 0 {
		t.Fatalf("second reopen replayed %d records (post-recovery checkpoint missing)", db3.Replayed)
	}
	if got := db3.Table("t").Rows(); got != 300 {
		t.Fatalf("second reopen rows = %d, want 300", got)
	}
}

// TestTornTailThenNewCommitsSurvive covers the replayed==0 torn-tail
// window: garbage after the last intact record (a crash mid-flush whose
// records were all already reflected in flushed pages) must be truncated
// at open, or records committed by the next session would sit behind the
// garbage where replay can never reach them.
func TestTornTailThenNewCommitsSurvive(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", MustSchema(Column{"v", TypeInt}))
	for i := 0; i < 20; i++ {
		tbl.Insert(Row{I(int64(i))})
	}
	if err := db.Close(); err != nil { // clean checkpoint: WAL empty
		t.Fatal(err)
	}
	// Simulate a crash mid-flush that wrote only garbage (no intact
	// record): replay will apply nothing (replayed == 0) yet the tail
	// must still be cleaned up.
	f, err := os.OpenFile(filepath.Join(dir, "wal.nmlog"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xba, 0xad, 0xf0, 0x0d, 0x99}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Replayed != 0 {
		t.Fatalf("setup: expected replayed == 0, got %d", db2.Replayed)
	}
	// Commit a new row, crash, and reopen: the row must be recovered.
	if _, err := db2.Table("t").Insert(Row{I(777)}); err != nil {
		t.Fatal(err)
	}
	if err := db2.Commit(); err != nil {
		t.Fatal(err)
	}
	db2.CloseDiscard()

	db3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got := db3.Table("t").Rows(); got != 21 {
		t.Fatalf("rows = %d, want 21 (commit after torn tail lost)", got)
	}
}

// TestDropRecreateCrashDoesNotResurrectRows drops a table and recreates
// the name with a different schema, all since the last checkpoint, then
// crashes: the new incarnation must adopt only its own pages, never the
// dropped predecessor's rows.
func TestDropRecreateCrashDoesNotResurrectRows(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	old, err := db.CreateTable("t", MustSchema(Column{"v", TypeInt}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		old.Insert(Row{I(int64(i))})
	}
	if err := db.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	fresh, err := db.CreateTable("t", MustSchema(Column{"s", TypeString}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Insert(Row{S("only-me")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	db.CloseDiscard() // crash before any checkpoint

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl := db2.Table("t")
	if tbl == nil {
		t.Fatal("recreated table lost")
	}
	if got := tbl.Rows(); got != 1 {
		t.Fatalf("rows = %d, want 1 (dropped incarnation's rows resurrected)", got)
	}
	tbl.Scan(func(_ RowID, row Row) bool {
		if row[0].Type != TypeString || row[0].Str != "only-me" {
			t.Fatalf("unexpected row %v", row)
		}
		return true
	})
}

// dirDigest hashes every file in dir so tests can assert a reopen
// changed nothing on disk.
func dirDigest(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		m[e.Name()] = fmt.Sprintf("%x", sha256.Sum256(b))
	}
	return m
}

// TestCheckpointENOSPCMatrix is TestCheckpointCrashMatrix's sibling for
// a disk that stays up but misbehaves: at each step of the checkpoint
// sequence the filesystem reports ENOSPC instead of the process dying.
// The checkpoint must fail cleanly, the store must degrade (writes
// refused, reads served), a checkpoint after space returns must restore
// write service, and reopening must reproduce the exact committed state
// — with a second reopen leaving every on-disk byte untouched.
func TestCheckpointENOSPCMatrix(t *testing.T) {
	steps := []struct {
		name string
		rule vfs.Rule
	}{
		{"derived-temp", vfs.Rule{Op: vfs.OpWrite, Path: "derived.nmds.tmp", Err: syscall.ENOSPC}},
		{"derived-rename", vfs.Rule{Op: vfs.OpRename, Path: "derived.nmds", Err: syscall.ENOSPC}},
		{"catalog-temp", vfs.Rule{Op: vfs.OpWrite, Path: "catalog.json.tmp", Err: syscall.ENOSPC}},
		{"catalog-rename", vfs.Rule{Op: vfs.OpRename, Path: "catalog.json", Err: syscall.ENOSPC}},
		{"wal-temp", vfs.Rule{Op: vfs.OpWrite, Path: "wal.nmlog.ckpt", Err: syscall.ENOSPC}},
		{"wal-rename", vfs.Rule{Op: vfs.OpRename, Path: "wal.nmlog", Err: syscall.ENOSPC}},
	}
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFaultFS(nil)
			db, err := Open(Options{Dir: dir, FS: ffs})
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := db.CreateTable("t", MustSchema(Column{"v", TypeInt}))
			if err != nil {
				t.Fatal(err)
			}
			if err := tbl.CreateIndex("v"); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				if _, err := tbl.Insert(Row{I(int64(i))}); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("baseline checkpoint: %v", err)
			}
			for i := 40; i < 80; i++ {
				if _, err := tbl.Insert(Row{I(int64(i))}); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Commit(); err != nil {
				t.Fatal(err)
			}

			// The disk fills: the checkpoint fails cleanly and the store
			// flips to degraded read-only.
			ffs.AddRule(step.rule)
			if err := db.Checkpoint(); err == nil {
				t.Fatalf("checkpoint survived ENOSPC at %s", step.name)
			}
			h := db.Health()
			if !h.Degraded || h.WriteErrors == 0 {
				t.Fatalf("store not degraded after failed checkpoint: %+v", h)
			}
			if _, err := tbl.Insert(Row{I(999)}); !errors.Is(err, ErrDegraded) {
				t.Fatalf("insert while degraded = %v, want ErrDegraded", err)
			}
			// Reads keep serving the committed state.
			if rids, err := tbl.Lookup("v", I(41)); err != nil || len(rids) != 1 {
				t.Fatalf("degraded read: %v, %v", rids, err)
			}

			// Space returns: a clean checkpoint restores write service.
			ffs.ClearFaults()
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("healing checkpoint: %v", err)
			}
			if db.Health().Degraded {
				t.Fatal("degraded flag survived a successful checkpoint")
			}
			if _, err := tbl.Insert(Row{I(80)}); err != nil {
				t.Fatalf("insert after healing: %v", err)
			}
			if err := db.Commit(); err != nil {
				t.Fatal(err)
			}
			db.CloseDiscard() // crash

			// Reopen reproduces exactly the acked state.
			db2, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("reopen after ENOSPC at %s: %v", step.name, err)
			}
			if got := db2.Table("t").Rows(); got != 81 {
				t.Fatalf("rows = %d, want 81", got)
			}
			for i := 0; i <= 80; i++ {
				rids, err := db2.Table("t").Lookup("v", I(int64(i)))
				if err != nil || len(rids) != 1 {
					t.Fatalf("lookup %d -> %v, %v", i, rids, err)
				}
			}
			db2.CloseDiscard()

			// A reopen with no writes must not disturb a single byte.
			before := dirDigest(t, dir)
			db3, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got := db3.Table("t").Rows(); got != 81 {
				t.Fatalf("second reopen rows = %d", got)
			}
			db3.CloseDiscard()
			after := dirDigest(t, dir)
			if len(before) != len(after) {
				t.Fatalf("file set changed across reopen: %v vs %v", before, after)
			}
			for name, sum := range before {
				if after[name] != sum {
					t.Fatalf("reopen mutated %s", name)
				}
			}
		})
	}
}
