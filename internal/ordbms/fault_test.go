package ordbms

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// faultDisk wraps a DiskManager and fails operations on command.
type faultDisk struct {
	mu         sync.Mutex
	inner      DiskManager
	failReads  bool
	failWrites bool
	writesLeft int // fail writes after this many succeed (-1 = off)
}

var errInjected = errors.New("injected I/O failure")

func newFaultDisk() *faultDisk {
	return &faultDisk{inner: NewMemDisk(), writesLeft: -1}
}

func (d *faultDisk) AllocatePage() (uint32, error) { return d.inner.AllocatePage() }

func (d *faultDisk) ReadPage(no uint32, buf []byte) error {
	d.mu.Lock()
	fail := d.failReads
	d.mu.Unlock()
	if fail {
		return errInjected
	}
	return d.inner.ReadPage(no, buf)
}

func (d *faultDisk) WritePage(no uint32, buf []byte) error {
	d.mu.Lock()
	if d.failWrites {
		d.mu.Unlock()
		return errInjected
	}
	if d.writesLeft == 0 {
		d.mu.Unlock()
		return errInjected
	}
	if d.writesLeft > 0 {
		d.writesLeft--
	}
	d.mu.Unlock()
	return d.inner.WritePage(no, buf)
}

func (d *faultDisk) NumPages() uint32 { return d.inner.NumPages() }
func (d *faultDisk) Sync() error      { return d.inner.Sync() }
func (d *faultDisk) Close() error     { return d.inner.Close() }

func TestReadFailureSurfacesCleanly(t *testing.T) {
	disk := newFaultDisk()
	pool := NewBufferPool(disk, 4) // tiny pool forces re-reads
	h := NewHeapFile(pool, nil)
	var rids []RowID
	for i := 0; i < 20; i++ {
		rid, err := h.Insert(make([]byte, 3000))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	// Touch pages so the first ones are evicted, then poison reads.
	disk.mu.Lock()
	disk.failReads = true
	disk.mu.Unlock()
	_, err := h.Fetch(rids[0])
	if !errors.Is(err, errInjected) {
		t.Fatalf("expected injected error, got %v", err)
	}
	// Recovery of the fault restores service.
	disk.mu.Lock()
	disk.failReads = false
	disk.mu.Unlock()
	if _, err := h.Fetch(rids[0]); err != nil {
		t.Fatalf("after fault cleared: %v", err)
	}
}

func TestEvictionWriteFailureDoesNotLoseData(t *testing.T) {
	disk := newFaultDisk()
	pool := NewBufferPool(disk, 4)
	h := NewHeapFile(pool, nil)
	// Fill beyond the pool so evictions happen; then make writes fail and
	// confirm the insert that needed an eviction reports the error
	// rather than silently dropping a dirty page.
	for i := 0; i < 8; i++ {
		if _, err := h.Insert(make([]byte, 5000)); err != nil {
			t.Fatal(err)
		}
	}
	disk.mu.Lock()
	disk.failWrites = true
	disk.mu.Unlock()
	_, err := h.Insert(make([]byte, 5000))
	if !errors.Is(err, errInjected) {
		t.Fatalf("eviction write failure swallowed: %v", err)
	}
	disk.mu.Lock()
	disk.failWrites = false
	disk.mu.Unlock()
	if _, err := h.Insert(make([]byte, 5000)); err != nil {
		t.Fatalf("after fault cleared: %v", err)
	}
}

// TestWALTornTailIgnored appends garbage to the log and verifies
// recovery stops at the corruption instead of failing or applying junk.
func TestWALTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", MustSchema(Column{"v", TypeInt}))
	for i := 0; i < 50; i++ {
		if _, err := tbl.Insert(Row{I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	db.mu.Lock()
	db.saveCatalogLocked()
	db.mu.Unlock()
	// Crash, then corrupt the WAL tail.
	walPath := filepath.Join(dir, "wal.nmlog")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery choked on torn tail: %v", err)
	}
	defer db2.Close()
	if db2.Table("t").Rows() != 50 {
		t.Fatalf("rows = %d", db2.Table("t").Rows())
	}
}

// TestWALMidRecordCorruption flips a byte inside a committed record; the
// CRC must reject it and recovery must keep the prefix.
func TestWALMidRecordCorruption(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", MustSchema(Column{"v", TypeInt}))
	for i := 0; i < 50; i++ {
		tbl.Insert(Row{I(int64(i))})
	}
	db.Commit()
	db.mu.Lock()
	db.saveCatalogLocked()
	db.mu.Unlock()

	walPath := filepath.Join(dir, "wal.nmlog")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte ~80% in: the first 80% of records stay valid.
	pos := walHeaderSize + (len(data)-walHeaderSize)*8/10
	data[pos] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery failed on mid-record corruption: %v", err)
	}
	defer db2.Close()
	rows := db2.Table("t").Rows()
	if rows == 0 || rows > 50 {
		t.Fatalf("rows after partial recovery = %d", rows)
	}
	// Rows that survived must read back intact and in prefix order.
	seen := int64(0)
	db2.Table("t").Scan(func(_ RowID, row Row) bool {
		if row[0].Int != seen {
			t.Fatalf("row %d has value %d", seen, row[0].Int)
		}
		seen++
		return true
	})
}

func TestBufferPoolExhaustionError(t *testing.T) {
	disk := NewMemDisk()
	pool := NewBufferPool(disk, 8)
	// Pin more pages than capacity without unpinning.
	var frames []*Frame
	for i := 0; i < 8; i++ {
		f, err := pool.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if _, err := pool.NewPage(); err == nil {
		t.Fatal("pool exhaustion not reported")
	}
	// Unpinning frees capacity again.
	pool.Unpin(frames[0], false)
	if _, err := pool.NewPage(); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestConcurrentTablesIndependent(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	const g = 6
	errc := make(chan error, g)
	for w := 0; w < g; w++ {
		go func(w int) {
			tbl, err := db.CreateTable(fmt.Sprintf("t%d", w), MustSchema(Column{"v", TypeInt}))
			if err != nil {
				errc <- err
				return
			}
			for i := 0; i < 100; i++ {
				if _, err := tbl.Insert(Row{I(int64(i))}); err != nil {
					errc <- err
					return
				}
			}
			if tbl.Rows() != 100 {
				errc <- fmt.Errorf("t%d rows = %d", w, tbl.Rows())
				return
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < g; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
