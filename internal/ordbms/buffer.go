package ordbms

import (
	"container/list"
	"fmt"
	"sync"
)

// BufferPool caches pages in memory with LRU replacement.  Pages are
// pinned while in use; unpinned dirty pages are flushed on eviction,
// respecting the WAL-ahead rule via the flushGate callback.
type BufferPool struct {
	// mu is deliberately not marked hot — eviction legitimately
	// flushes a dirty page to disk while holding it.
	mu       sync.Mutex
	disk     DiskManager
	capacity int
	frames   map[uint32]*Frame // guarded by mu
	lru      *list.List        // guarded by mu; front = most recently used; holds *Frame

	// flushGate, when set, is invoked with the page LSN before a dirty
	// page is written to disk.  The WAL installs a gate that forces the
	// log out through that LSN first.  Guarded by mu.
	flushGate func(lsn uint64) error

	// Stats
	hits, misses, evictions uint64 // guarded by mu
}

// Frame is a buffer-pool slot holding one page.
type Frame struct {
	PageNo uint32
	Page   *Page
	pins   int
	dirty  bool
	lruEl  *list.Element

	// Latch serialises access to the page contents.
	Latch sync.RWMutex
}

// NewBufferPool creates a pool caching up to capacity pages.
func NewBufferPool(disk DiskManager, capacity int) *BufferPool {
	if capacity < 8 {
		capacity = 8
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[uint32]*Frame, capacity),
		lru:      list.New(),
	}
}

// SetFlushGate installs the WAL-ahead gate (see WAL.AttachTo).
func (bp *BufferPool) SetFlushGate(gate func(lsn uint64) error) {
	bp.mu.Lock()
	bp.flushGate = gate
	bp.mu.Unlock()
}

// Stats returns (hits, misses, evictions) counters.
func (bp *BufferPool) Stats() (hits, misses, evictions uint64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.hits, bp.misses, bp.evictions
}

// NewPage allocates a fresh page on disk, pins it and returns its frame.
func (bp *BufferPool) NewPage() (*Frame, error) {
	no, err := bp.disk.AllocatePage()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.ensureRoomLocked(); err != nil {
		return nil, err
	}
	f := &Frame{PageNo: no, Page: NewPage(), pins: 1, dirty: true}
	f.lruEl = bp.lru.PushFront(f)
	bp.frames[no] = f
	return f, nil
}

// Fetch pins the given page, reading it from disk if needed.
func (bp *BufferPool) Fetch(no uint32) (*Frame, error) {
	bp.mu.Lock()
	if f, ok := bp.frames[no]; ok {
		f.pins++
		bp.lru.MoveToFront(f.lruEl)
		bp.hits++
		bp.mu.Unlock()
		return f, nil
	}
	bp.misses++
	if err := bp.ensureRoomLocked(); err != nil {
		bp.mu.Unlock()
		return nil, err
	}
	// netmarkvet:allocok — miss path: the frame and page backing a
	// newly resident page are the point of the fetch
	f := &Frame{PageNo: no, Page: NewPage(), pins: 1}
	f.lruEl = bp.lru.PushFront(f)
	bp.frames[no] = f
	bp.mu.Unlock()

	// Read outside the pool lock; the frame is pinned so it cannot be
	// evicted, and no other goroutine uses the page before we return.
	if err := bp.disk.ReadPage(no, f.Page.Data()); err != nil {
		bp.mu.Lock()
		f.pins--
		delete(bp.frames, no)
		bp.lru.Remove(f.lruEl)
		bp.mu.Unlock()
		return nil, err
	}
	return f, nil
}

// Unpin releases a pin.  markDirty records that the caller modified the page.
func (bp *BufferPool) Unpin(f *Frame, markDirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if markDirty {
		f.dirty = true
	}
	if f.pins > 0 {
		f.pins--
	}
}

// ensureRoomLocked evicts the least recently used unpinned frame when the
// pool is at capacity.  Caller holds bp.mu.
func (bp *BufferPool) ensureRoomLocked() error {
	for len(bp.frames) >= bp.capacity {
		victim := bp.findVictimLocked()
		if victim == nil {
			return fmt.Errorf("ordbms: buffer pool exhausted (%d pages all pinned)", bp.capacity)
		}
		if victim.dirty {
			if bp.flushGate != nil {
				if err := bp.flushGate(victim.Page.LSN()); err != nil {
					return err
				}
			}
			if err := bp.disk.WritePage(victim.PageNo, victim.Page.Data()); err != nil {
				return err
			}
		}
		delete(bp.frames, victim.PageNo)
		bp.lru.Remove(victim.lruEl)
		bp.evictions++
	}
	return nil
}

func (bp *BufferPool) findVictimLocked() *Frame {
	for el := bp.lru.Back(); el != nil; el = el.Prev() {
		f := el.Value.(*Frame)
		if f.pins == 0 {
			return f
		}
	}
	return nil
}

// FlushAll writes every dirty page to disk (a checkpoint helper).
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	frames := make([]*Frame, 0, len(bp.frames))
	for _, f := range bp.frames {
		frames = append(frames, f)
	}
	gate := bp.flushGate
	bp.mu.Unlock()

	for _, f := range frames {
		f.Latch.RLock()
		if f.dirty {
			if gate != nil {
				if err := gate(f.Page.LSN()); err != nil {
					f.Latch.RUnlock()
					return err
				}
			}
			if err := bp.disk.WritePage(f.PageNo, f.Page.Data()); err != nil {
				f.Latch.RUnlock()
				return err
			}
			f.dirty = false
		}
		f.Latch.RUnlock()
	}
	return bp.disk.Sync()
}
