package ordbms

import (
	"os"
	"path/filepath"
	"testing"
)

func testSchema(t *testing.T) Schema {
	t.Helper()
	s, err := NewSchema(
		Column{"id", TypeInt},
		Column{"name", TypeString},
		Column{"score", TypeFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDBCreateInsertFetch(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("people", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tbl.Insert(Row{I(1), S("ada"), F(99.5)})
	if err != nil {
		t.Fatal(err)
	}
	row, err := tbl.Fetch(rid)
	if err != nil {
		t.Fatal(err)
	}
	if row[1].Str != "ada" || row[2].Float != 99.5 {
		t.Fatalf("row = %v", row)
	}
}

func TestDBSchemaValidation(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	tbl, _ := db.CreateTable("t", testSchema(t))
	if _, err := tbl.Insert(Row{I(1), S("x")}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := tbl.Insert(Row{S("wrong"), S("x"), F(1)}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := tbl.Insert(Row{Null(), Null(), Null()}); err != nil {
		t.Fatalf("all-null row rejected: %v", err)
	}
}

func TestDBDuplicateTable(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	if _, err := db.CreateTable("t", testSchema(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", testSchema(t)); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestDBIndexLookup(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	tbl, _ := db.CreateTable("t", testSchema(t))
	for i := 0; i < 100; i++ {
		name := "even"
		if i%2 == 1 {
			name = "odd"
		}
		if _, err := tbl.Insert(Row{I(int64(i)), S(name), F(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	rids, err := tbl.Lookup("name", S("even"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 50 {
		t.Fatalf("lookup returned %d rows", len(rids))
	}
	for _, rid := range rids {
		row, err := tbl.Fetch(rid)
		if err != nil {
			t.Fatal(err)
		}
		if row[0].Int%2 != 0 {
			t.Fatalf("index returned odd row %v", row)
		}
	}
	// Index maintained on subsequent inserts.
	if _, err := tbl.Insert(Row{I(1000), S("even"), F(0)}); err != nil {
		t.Fatal(err)
	}
	rids, _ = tbl.Lookup("name", S("even"))
	if len(rids) != 51 {
		t.Fatalf("index not maintained: %d", len(rids))
	}
}

func TestDBIndexDeleteMaintenance(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	tbl, _ := db.CreateTable("t", testSchema(t))
	tbl.CreateIndex("name")
	rid, _ := tbl.Insert(Row{I(1), S("gone"), F(0)})
	tbl.Insert(Row{I(2), S("kept"), F(0)})
	if err := tbl.Delete(rid); err != nil {
		t.Fatal(err)
	}
	rids, _ := tbl.Lookup("name", S("gone"))
	if len(rids) != 0 {
		t.Fatalf("deleted row still indexed: %v", rids)
	}
	rids, _ = tbl.Lookup("name", S("kept"))
	if len(rids) != 1 {
		t.Fatalf("kept row lost: %v", rids)
	}
}

func TestDBUpdateMaintainsIndex(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	tbl, _ := db.CreateTable("t", testSchema(t))
	tbl.CreateIndex("name")
	rid, _ := tbl.Insert(Row{I(1), S("before"), F(0)})
	if err := tbl.Update(rid, Row{I(1), S("after"), F(0)}); err != nil {
		t.Fatal(err)
	}
	if rids, _ := tbl.Lookup("name", S("before")); len(rids) != 0 {
		t.Fatal("stale index entry after update")
	}
	if rids, _ := tbl.Lookup("name", S("after")); len(rids) != 1 {
		t.Fatal("missing index entry after update")
	}
	row, _ := tbl.Fetch(rid)
	if row[1].Str != "after" {
		t.Fatalf("row = %v", row)
	}
}

func TestDBIndexRangeAndPrefix(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	tbl, _ := db.CreateTable("t", testSchema(t))
	tbl.CreateIndex("id")
	tbl.CreateIndex("name")
	names := []string{"apple", "apricot", "banana", "application"}
	for i, n := range names {
		tbl.Insert(Row{I(int64(i * 10)), S(n), F(0)})
	}
	got := tbl.Index("id").Range(I(5), I(25))
	if len(got) != 2 {
		t.Fatalf("range [5,25] returned %d", len(got))
	}
	pre := tbl.Index("name").Prefix("app")
	if len(pre) != 2 { // apple, application
		t.Fatalf("prefix app returned %d", len(pre))
	}
}

func TestDBPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("docs", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	var rids []RowID
	for i := 0; i < 500; i++ {
		rid, err := tbl.Insert(Row{I(int64(i)), S("doc"), F(float64(i))})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Replayed != 0 {
		t.Fatalf("clean shutdown should replay nothing, replayed %d", db2.Replayed)
	}
	tbl2 := db2.Table("docs")
	if tbl2 == nil {
		t.Fatal("table lost across reopen")
	}
	if tbl2.Rows() != 500 {
		t.Fatalf("rows = %d", tbl2.Rows())
	}
	// RowIDs remain valid across restart (physical addressing).
	row, err := tbl2.Fetch(rids[123])
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int != 123 {
		t.Fatalf("rid 123 returned %v", row)
	}
	// Index was rebuilt.
	got, err := tbl2.Lookup("id", I(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("rebuilt index lookup: %v", got)
	}
}

// TestDBCrashRecovery simulates a crash: mutations are committed to the
// WAL but pages never flushed; reopening must replay the log.
func TestDBCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", testSchema(t))
	var rids []RowID
	for i := 0; i < 200; i++ {
		rid, err := tbl.Insert(Row{I(int64(i)), S("v"), F(0)})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tbl.Delete(rids[7]); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil { // WAL synced...
		t.Fatal(err)
	}
	// ...but we "crash" without Close: pages and catalog never written.
	// Save the catalog by hand so the table definition survives (the
	// catalog is metadata; the paper's stores are long-lived).
	db.mu.Lock()
	if err := db.saveCatalogLocked(db.catalogGen + 1); err != nil {
		t.Fatal(err)
	}
	db.mu.Unlock()
	// Abandon db without flushing pages.

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Replayed == 0 {
		t.Fatal("expected WAL replay after crash")
	}
	tbl2 := db2.Table("t")
	if tbl2 == nil {
		t.Fatal("table missing after recovery")
	}
	if tbl2.Rows() != 199 {
		t.Fatalf("rows after recovery = %d, want 199", tbl2.Rows())
	}
	row, err := tbl2.Fetch(rids[100])
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int != 100 {
		t.Fatalf("recovered row = %v", row)
	}
	if _, err := tbl2.Fetch(rids[7]); err != ErrRecordDeleted {
		t.Fatalf("deleted row resurrected: %v", err)
	}
}

// TestDBCrashRecoveryIdempotent crashes again right after recovery.
func TestDBCrashRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(Options{Dir: dir})
	tbl, _ := db.CreateTable("t", testSchema(t))
	for i := 0; i < 50; i++ {
		tbl.Insert(Row{I(int64(i)), S("v"), F(0)})
	}
	db.Commit()
	db.mu.Lock()
	db.saveCatalogLocked(db.catalogGen + 1)
	db.mu.Unlock()
	// crash 1
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Recovery checkpointed; crash again immediately.
	db3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if db3.Replayed != 0 {
		t.Fatalf("second recovery replayed %d records; checkpoint failed", db3.Replayed)
	}
	if db3.Table("t").Rows() != 50 {
		t.Fatalf("rows = %d", db3.Table("t").Rows())
	}
	_ = db2
}

func TestDBScan(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	tbl, _ := db.CreateTable("t", testSchema(t))
	for i := 0; i < 25; i++ {
		tbl.Insert(Row{I(int64(i)), S("r"), F(0)})
	}
	sum := int64(0)
	if err := tbl.Scan(func(_ RowID, row Row) bool {
		sum += row[0].Int
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 300 { // 0+..+24
		t.Fatalf("sum = %d", sum)
	}
}

func TestWALCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(Options{Dir: dir})
	tbl, _ := db.CreateTable("t", testSchema(t))
	for i := 0; i < 100; i++ {
		tbl.Insert(Row{I(int64(i)), S("v"), F(0)})
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint, the WAL should be empty (header only).
	fi, err := filepath.Glob(filepath.Join(dir, "wal.nmlog"))
	if err != nil || len(fi) != 1 {
		t.Fatalf("wal file: %v %v", fi, err)
	}
	st, err := os.Stat(fi[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > walHeaderSize {
		t.Fatalf("wal not truncated: %d bytes", st.Size())
	}
	db.Close()
}

func TestTableNamesSorted(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		db.CreateTable(n, testSchema(t))
	}
	names := db.TableNames()
	if names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("names = %v", names)
	}
}

func TestDropTable(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	db.CreateTable("t", testSchema(t))
	if err := db.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if db.Table("t") != nil {
		t.Fatal("table still visible")
	}
	if err := db.DropTable("t"); err == nil {
		t.Fatal("double drop accepted")
	}
}
