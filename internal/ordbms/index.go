package ordbms

import (
	"strings"
	"sync"

	"netmark/internal/btree"
)

// Index is a secondary B-tree index on one column of a table.  Indexes are
// maintained synchronously with table mutations and rebuilt from the heap
// when a store is reopened (they are not logged — the heap is the durable
// truth, the index is derived state).
type Index struct {
	Column string
	colIdx int

	// mu protects the B-tree; lookups hold it shared across the whole
	// descent.  netmarkvet:lockorder 35
	mu   sync.RWMutex
	tree *btree.Tree[Value, RowID] // guarded by mu
}

func newIndex(column string, colIdx int) *Index {
	return &Index{
		Column: column,
		colIdx: colIdx,
		tree:   btree.New[Value, RowID](func(a, b Value) int { return a.Compare(b) }),
	}
}

func (ix *Index) insert(row Row, rid RowID) {
	v := row[ix.colIdx]
	ix.mu.Lock()
	ix.tree.Insert(v, rid)
	ix.mu.Unlock()
}

func (ix *Index) remove(row Row, rid RowID) {
	v := row[ix.colIdx]
	ix.mu.Lock()
	ix.tree.Delete(v, func(r RowID) bool { return r == rid })
	ix.mu.Unlock()
}

// Lookup returns the RowIDs stored under exactly v.
func (ix *Index) Lookup(v Value) []RowID {
	ix.mu.RLock()
	got := ix.tree.Get(v)
	out := append([]RowID(nil), got...)
	ix.mu.RUnlock()
	return out
}

// Range returns RowIDs for keys in [lo, hi] inclusive.
func (ix *Index) Range(lo, hi Value) []RowID {
	var out []RowID
	ix.mu.RLock()
	ix.tree.AscendRange(lo, hi, func(_ Value, vals []RowID) bool {
		out = append(out, vals...)
		return true
	})
	ix.mu.RUnlock()
	return out
}

// Prefix returns RowIDs for string keys beginning with p.
func (ix *Index) Prefix(p string) []RowID {
	var out []RowID
	lo := S(p)
	ix.mu.RLock()
	ix.tree.AscendPrefixFunc(lo,
		func(k Value) bool { return k.Type == TypeString && strings.HasPrefix(k.Str, p) },
		func(_ Value, vals []RowID) bool {
			out = append(out, vals...)
			return true
		})
	ix.mu.RUnlock()
	return out
}

// Keys returns the number of distinct keys in the index.
func (ix *Index) Keys() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Keys()
}

// Len returns the number of entries in the index.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Len()
}
