package ordbms

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDegraded is wrapped by every write-path error returned while the
// store is in degraded read-only mode.  Callers match it with errors.Is
// and map it to "try again later" (the HTTP layer answers 503 with
// Retry-After); reads are unaffected.
var ErrDegraded = errors.New("ordbms: store degraded (read-only)")

// IOFault wraps an error from the storage device itself — a failed page
// write, file extension, or fsync — as opposed to logical errors
// (schema violations, missing rows).  I/O faults are what flip the
// store into degraded mode, and what the ingestion daemon classifies as
// transient (retryable) failures.
type IOFault struct {
	Op  string
	Err error
}

func (e *IOFault) Error() string { return "ordbms: " + e.Op + ": " + e.Err.Error() }
func (e *IOFault) Unwrap() error { return e.Err }

// IsIOFault reports whether any error in err's chain came from the
// storage device.
func IsIOFault(err error) bool {
	var f *IOFault
	return errors.As(err, &f)
}

// WALPoisonedError is returned by every commit after a commit fsync has
// failed.  A failed fsync means the kernel may have dropped dirty log
// pages while clearing its error state, so a later fsync reporting
// success would not cover the earlier records — acking anything after
// that point would be a lie.  The poison clears only when a checkpoint
// rebuilds the log on a fresh file handle, written and fsynced from
// scratch.
type WALPoisonedError struct {
	Cause error
}

func (e *WALPoisonedError) Error() string {
	return "ordbms: wal poisoned by earlier fsync failure: " + e.Cause.Error()
}
func (e *WALPoisonedError) Unwrap() error { return e.Cause }

// HealthStatus is a point-in-time snapshot of the store's write health.
type HealthStatus struct {
	// Degraded reports that the store is serving reads only.
	Degraded bool
	// Reason is the first write failure that flipped the store into
	// degraded mode ("" while healthy).
	Reason string
	// Since is when the store degraded (zero while healthy).
	Since time.Time
	// WriteErrors counts write-path I/O failures over the store's
	// lifetime (it survives recovery back to healthy).
	WriteErrors uint64
}

// healthState tracks degraded mode.  The flag is an atomic so the
// per-write fast path (Writable) costs one load; the rest is guarded by
// mu.  netmarkvet:lockorder 50
type healthState struct {
	degraded atomic.Bool

	mu          sync.Mutex
	reason      string    // guarded by mu
	since       time.Time // guarded by mu
	writeErrors uint64    // guarded by mu
}

// noteWriteError records a write-path failure and flips the store into
// degraded read-only mode if it is not already there.
func (db *DB) noteWriteError(op string, err error) {
	h := &db.health
	h.mu.Lock()
	h.writeErrors++
	if !h.degraded.Load() {
		h.reason = op + ": " + err.Error()
		h.since = time.Now()
		h.degraded.Store(true)
	}
	h.mu.Unlock()
}

// clearDegraded restores write service after a successful checkpoint
// proved the device is writable again end to end.
func (db *DB) clearDegraded() {
	h := &db.health
	h.mu.Lock()
	if h.degraded.Load() {
		h.degraded.Store(false)
		h.reason = ""
		h.since = time.Time{}
	}
	h.mu.Unlock()
}

// Writable returns nil while the store accepts writes, or an error
// wrapping ErrDegraded naming the fault that degraded it.  Every write
// entry point checks it first, so a degraded store rejects mutations
// without touching the device.
func (db *DB) Writable() error {
	h := &db.health
	if !h.degraded.Load() {
		return nil
	}
	h.mu.Lock()
	reason := h.reason
	h.mu.Unlock()
	return fmt.Errorf("%w: %s", ErrDegraded, reason)
}

// Health reports the store's current write health.
func (db *DB) Health() HealthStatus {
	h := &db.health
	h.mu.Lock()
	defer h.mu.Unlock()
	return HealthStatus{
		Degraded:    h.degraded.Load(),
		Reason:      h.reason,
		Since:       h.since,
		WriteErrors: h.writeErrors,
	}
}
