package ordbms

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// WAL is a redo-only write-ahead log.  Every page mutation is logged
// before the page may reach disk (the buffer pool enforces this through
// the flush gate).  Recovery replays records whose LSN exceeds the page's
// on-disk LSN.
//
// LSNs are monotonically increasing byte positions; a checkpoint truncates
// the physical file but advances a persistent base so LSNs never repeat.
type WAL struct {
	mu       sync.Mutex
	f        *os.File
	base     uint64 // LSN of physical file offset 0
	buf      []byte // appended but not yet written records
	bufStart uint64 // LSN of buf[0]
	flushed  uint64 // LSN through which the file is written (not necessarily synced)
	synced   uint64 // LSN through which the file is fsynced
	appends  uint64 // stat: records appended
	syncs    uint64 // stat: fsyncs issued

	// Group-commit state: while a leader's fsync is in flight, followers
	// wait on syncDone instead of issuing their own.
	syncing  bool
	syncDone chan struct{}
}

// WAL record types.
const (
	walInsert byte = 1 + iota
	walDelete
	walUpdate
	walCheckpoint
)

const walHeaderSize = 16 // magic(8) + baseLSN(8)

var walMagic = [8]byte{'N', 'M', 'W', 'A', 'L', 'v', '1', 0}

// OpenWAL opens or creates the log at path.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ordbms: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &WAL{f: f}
	if st.Size() == 0 {
		var hdr [walHeaderSize]byte
		copy(hdr[:8], walMagic[:])
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		w.base = 0
	} else {
		var hdr [walHeaderSize]byte
		if _, err := f.ReadAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		if [8]byte(hdr[:8]) != walMagic {
			f.Close()
			return nil, fmt.Errorf("ordbms: %s is not a netmark wal", path)
		}
		w.base = binary.LittleEndian.Uint64(hdr[8:16])
	}
	end := uint64(st.Size())
	if end < walHeaderSize {
		end = walHeaderSize
	}
	w.flushed = w.base + end - walHeaderSize
	w.synced = w.flushed
	w.bufStart = w.flushed
	return w, nil
}

// AttachTo installs this WAL as the pool's flush gate, enforcing the
// WAL-ahead rule.
func (w *WAL) AttachTo(pool *BufferPool) {
	pool.SetFlushGate(func(lsn uint64) error { return w.Flush(lsn) })
}

// NextLSN returns the LSN the next record will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bufStart + uint64(len(w.buf))
}

// appendRecord frames and buffers a record, returning its end LSN.
// Framing: u32 payload length, u32 crc of payload, then payload.
func (w *WAL) appendRecord(typ byte, payload []byte) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	body := make([]byte, 0, 1+len(payload))
	body = append(body, typ)
	body = append(body, payload...)
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	w.buf = append(w.buf, frame[:]...)
	w.buf = append(w.buf, body...)
	w.appends++
	return w.bufStart + uint64(len(w.buf))
}

// LogInsert records an insert of rec at (page, slot) and returns the LSN.
func (w *WAL) LogInsert(page uint32, slot uint16, rec []byte) uint64 {
	p := make([]byte, 6+len(rec))
	binary.LittleEndian.PutUint32(p[0:4], page)
	binary.LittleEndian.PutUint16(p[4:6], slot)
	copy(p[6:], rec)
	return w.appendRecord(walInsert, p)
}

// LogDelete records a delete at (page, slot).
func (w *WAL) LogDelete(page uint32, slot uint16) uint64 {
	var p [6]byte
	binary.LittleEndian.PutUint32(p[0:4], page)
	binary.LittleEndian.PutUint16(p[4:6], slot)
	return w.appendRecord(walDelete, p[:])
}

// LogUpdate records an in-place update at (page, slot).
func (w *WAL) LogUpdate(page uint32, slot uint16, rec []byte) uint64 {
	p := make([]byte, 6+len(rec))
	binary.LittleEndian.PutUint32(p[0:4], page)
	binary.LittleEndian.PutUint16(p[4:6], slot)
	copy(p[6:], rec)
	return w.appendRecord(walUpdate, p)
}

// Flush writes buffered records through lsn to the file (no fsync).
func (w *WAL) Flush(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked(lsn)
}

func (w *WAL) flushLocked(lsn uint64) error {
	if lsn <= w.flushed || len(w.buf) == 0 {
		return nil
	}
	// Write the whole buffer; partial flushes complicate framing for no
	// benefit at these sizes.
	off := int64(w.flushed-w.base) + walHeaderSize
	if _, err := w.f.WriteAt(w.buf, off); err != nil {
		return fmt.Errorf("ordbms: wal write: %w", err)
	}
	w.flushed = w.bufStart + uint64(len(w.buf))
	w.bufStart = w.flushed
	w.buf = w.buf[:0]
	return nil
}

// Sync forces all buffered records to stable storage.
func (w *WAL) Sync() error {
	return w.SyncTo(w.NextLSN())
}

// SyncTo makes the log durable through lsn (which must not exceed
// NextLSN at the time of the call), coalescing concurrent callers into a
// single fsync — group commit.  The first caller to find no fsync in
// flight becomes the leader: it flushes everything buffered so far and
// fsyncs outside the lock, so records appended meanwhile keep flowing
// and every follower whose LSN the group covers returns without its own
// fsync.
func (w *WAL) SyncTo(lsn uint64) error {
	for {
		w.mu.Lock()
		if w.synced >= lsn {
			w.mu.Unlock()
			return nil
		}
		if w.syncing {
			// Ride on the in-flight group, then re-check coverage.
			done := w.syncDone
			w.mu.Unlock()
			<-done
			continue
		}
		w.syncing = true
		w.syncDone = make(chan struct{})
		flushErr := w.flushLocked(w.bufStart + uint64(len(w.buf)))
		target := w.flushed
		w.mu.Unlock()

		var syncErr error
		if flushErr == nil {
			syncErr = w.f.Sync()
		}

		w.mu.Lock()
		if flushErr == nil && syncErr == nil && target > w.synced {
			w.synced = target
			w.syncs++
		}
		w.syncing = false
		close(w.syncDone)
		covered := w.synced >= lsn
		w.mu.Unlock()
		if flushErr != nil {
			return flushErr
		}
		if syncErr != nil {
			return syncErr
		}
		if covered {
			return nil
		}
		// Our records were appended after the flush point we led (only
		// possible for misuse with lsn > NextLSN); lead another group.
	}
}

// Checkpoint truncates the log after the caller has flushed all pages.
// The LSN base advances so LSNs remain monotone across truncation.
func (w *WAL) Checkpoint() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.flushLocked(w.bufStart + uint64(len(w.buf))); err != nil {
		return err
	}
	newBase := w.flushed
	var hdr [walHeaderSize]byte
	copy(hdr[:8], walMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], newBase)
	if err := w.f.Truncate(walHeaderSize); err != nil {
		return err
	}
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs++
	w.base = newBase
	w.flushed = newBase
	w.synced = newBase
	w.bufStart = newBase
	return nil
}

// Appends returns the number of records appended (for tests and stats).
func (w *WAL) Appends() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends
}

// Syncs returns the number of fsyncs issued — the group-commit win is
// visible as syncs staying far below appends under batched ingest.
func (w *WAL) Syncs() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	if err := w.Sync(); err != nil {
		return err
	}
	return w.f.Close()
}

// WALRecord is a decoded log record handed to recovery.
type WALRecord struct {
	LSN  uint64 // end LSN of the record
	Type byte
	Page uint32
	Slot uint16
	Rec  []byte
}

// Replay scans the physical log and calls fn for each intact record.
// A torn or corrupt tail terminates the scan cleanly (crash semantics).
func (w *WAL) Replay(fn func(r WALRecord) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, err := w.f.Stat()
	if err != nil {
		return err
	}
	pos := int64(walHeaderSize)
	lsn := w.base
	var frame [8]byte
	for pos < st.Size() {
		if _, err := w.f.ReadAt(frame[:], pos); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // torn tail
			}
			return err
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		crc := binary.LittleEndian.Uint32(frame[4:8])
		if n == 0 || int64(n) > st.Size()-pos-8 {
			return nil // torn tail
		}
		body := make([]byte, n)
		if _, err := w.f.ReadAt(body, pos+8); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(body) != crc {
			return nil // corrupt tail
		}
		pos += 8 + int64(n)
		lsn = w.base + uint64(pos-walHeaderSize)
		r := WALRecord{LSN: lsn, Type: body[0]}
		switch body[0] {
		case walInsert, walUpdate:
			if len(body) < 7 {
				return nil
			}
			r.Page = binary.LittleEndian.Uint32(body[1:5])
			r.Slot = binary.LittleEndian.Uint16(body[5:7])
			r.Rec = body[7:]
		case walDelete:
			if len(body) < 7 {
				return nil
			}
			r.Page = binary.LittleEndian.Uint32(body[1:5])
			r.Slot = binary.LittleEndian.Uint16(body[5:7])
		case walCheckpoint:
			// informational only
		default:
			return nil
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}
