package ordbms

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"netmark/internal/vfs"
)

// WAL is a redo-only write-ahead log.  Every page mutation is logged
// before the page may reach disk (the buffer pool enforces this through
// the flush gate).  Recovery replays records whose LSN exceeds the page's
// on-disk LSN.
//
// LSNs are monotonically increasing byte positions; a checkpoint truncates
// the physical file but advances a persistent base so LSNs never repeat.
type WAL struct {
	// mu is deliberately not marked hot — flush and checkpoint
	// legitimately write and fsync the log while holding it (group
	// commit drops it around the leader's fsync).  netmarkvet:lockorder 40
	mu       sync.Mutex
	fs       vfs.FS   // filesystem all log I/O goes through
	f        vfs.File // guarded by mu
	path     string   // log file path (checkpoints swap the file atomically)
	dir      string   // parent directory, fsynced after the swap
	base     uint64   // guarded by mu; LSN of physical file offset 0
	buf      []byte   // guarded by mu; appended but not yet written records
	bufStart uint64   // guarded by mu; LSN of buf[0]
	flushed  uint64   // guarded by mu; LSN through which the file is written (not necessarily synced)
	synced   uint64   // guarded by mu; LSN through which the file is fsynced
	appends  uint64   // guarded by mu; stat: records appended
	syncs    uint64   // guarded by mu; stat: fsyncs issued

	// poisoned is the first commit-fsync failure, sticky until a
	// checkpoint rebuilds the log on a fresh handle.  After a failed
	// fsync the kernel may have dropped dirty pages while clearing the
	// error, so a later "successful" fsync would not cover the earlier
	// records: every commit must keep erroring rather than silently ack
	// data that may not be durable.  Guarded by mu.
	poisoned error

	// Group-commit state: while a leader's fsync is in flight, followers
	// wait on syncDone instead of issuing their own.  Guarded by mu.
	syncing  bool
	syncDone chan struct{} // guarded by mu
}

// WAL record types.
const (
	walInsert byte = 1 + iota
	walDelete
	walUpdate
	walCheckpoint
	// walAlloc records that a table adopted a freshly allocated page.
	// The catalog persists page ownership only at checkpoints, so without
	// these records a crash would orphan every page allocated since the
	// last checkpoint: replay could rebuild the page bytes, but no table
	// would know to include the page in its heap.
	walAlloc
	// walCreateTable / walCreateIndex / walDropTable log DDL for the same
	// reason: a table created (or an index added, or a table dropped)
	// after the last catalog save exists only in the log until the next
	// checkpoint, and a crash in that window must not lose committed rows
	// in it — or resurrect a dropped table.
	walCreateTable
	walCreateIndex
	walDropTable
)

const walHeaderSize = 16 // magic(8) + baseLSN(8)

var walMagic = [8]byte{'N', 'M', 'W', 'A', 'L', 'v', '1', 0}

// OpenWAL opens or creates the log at path, doing all file I/O through
// fsys.
func OpenWAL(fsys vfs.FS, path string) (*WAL, error) {
	// A leftover checkpoint temp means a crash before the atomic rename:
	// the live log is authoritative, the half-built successor is garbage.
	fsys.Remove(path + walCkptSuffix)
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ordbms: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &WAL{fs: fsys, f: f, path: path, dir: filepath.Dir(path)}
	if st.Size() == 0 {
		var hdr [walHeaderSize]byte
		copy(hdr[:8], walMagic[:])
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		w.base = 0
	} else {
		var hdr [walHeaderSize]byte
		if _, err := f.ReadAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		if [8]byte(hdr[:8]) != walMagic {
			f.Close()
			return nil, fmt.Errorf("ordbms: %s is not a netmark wal", path)
		}
		w.base = binary.LittleEndian.Uint64(hdr[8:16])
	}
	end := uint64(st.Size())
	if end < walHeaderSize {
		end = walHeaderSize
	}
	w.flushed = w.base + end - walHeaderSize
	w.synced = w.flushed
	w.bufStart = w.flushed
	return w, nil
}

// AttachTo installs this WAL as the pool's flush gate, enforcing the
// WAL-ahead rule.
func (w *WAL) AttachTo(pool *BufferPool) {
	pool.SetFlushGate(func(lsn uint64) error { return w.Flush(lsn) })
}

// NextLSN returns the LSN the next record will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bufStart + uint64(len(w.buf))
}

// appendRecord frames and buffers a record, returning its end LSN.
// Framing: u32 payload length, u32 crc of payload, then payload.
func (w *WAL) appendRecord(typ byte, payload []byte) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	body := make([]byte, 0, 1+len(payload))
	body = append(body, typ)
	body = append(body, payload...)
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	w.buf = append(w.buf, frame[:]...)
	w.buf = append(w.buf, body...)
	w.appends++
	return w.bufStart + uint64(len(w.buf))
}

// LogInsert records an insert of rec at (page, slot) and returns the LSN.
func (w *WAL) LogInsert(page uint32, slot uint16, rec []byte) uint64 {
	p := make([]byte, 6+len(rec))
	binary.LittleEndian.PutUint32(p[0:4], page)
	binary.LittleEndian.PutUint16(p[4:6], slot)
	copy(p[6:], rec)
	return w.appendRecord(walInsert, p)
}

// LogDelete records a delete at (page, slot).
func (w *WAL) LogDelete(page uint32, slot uint16) uint64 {
	var p [6]byte
	binary.LittleEndian.PutUint32(p[0:4], page)
	binary.LittleEndian.PutUint16(p[4:6], slot)
	return w.appendRecord(walDelete, p[:])
}

// LogUpdate records an in-place update at (page, slot).
func (w *WAL) LogUpdate(page uint32, slot uint16, rec []byte) uint64 {
	p := make([]byte, 6+len(rec))
	binary.LittleEndian.PutUint32(p[0:4], page)
	binary.LittleEndian.PutUint16(p[4:6], slot)
	copy(p[6:], rec)
	return w.appendRecord(walUpdate, p)
}

// LogAlloc records that table now owns page (logged before the first
// insert record touching the page).
func (w *WAL) LogAlloc(table string, page uint32) uint64 {
	p := make([]byte, 4+len(table))
	binary.LittleEndian.PutUint32(p[0:4], page)
	copy(p[4:], table)
	return w.appendRecord(walAlloc, p)
}

// LogCreateTable records a table creation with its schema, so recovery
// can rebuild a table the catalog has never seen.
func (w *WAL) LogCreateTable(table string, schema Schema) uint64 {
	p := appendWALString(nil, table)
	p = binary.AppendUvarint(p, uint64(len(schema.Columns)))
	for _, c := range schema.Columns {
		p = appendWALString(p, c.Name)
		p = append(p, byte(c.Type))
	}
	return w.appendRecord(walCreateTable, p)
}

// LogCreateIndex records a secondary-index creation.
func (w *WAL) LogCreateIndex(table, column string) uint64 {
	p := appendWALString(nil, table)
	p = appendWALString(p, column)
	return w.appendRecord(walCreateIndex, p)
}

// LogDropTable records a table drop (so recovery does not resurrect it
// from an earlier create record).
func (w *WAL) LogDropTable(table string) uint64 {
	return w.appendRecord(walDropTable, appendWALString(nil, table))
}

func appendWALString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

func readWALString(p []byte) (string, []byte, bool) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 || n > uint64(len(p)-sz) {
		return "", nil, false
	}
	return string(p[sz : sz+int(n)]), p[sz+int(n):], true
}

// Flush writes buffered records through lsn to the file (no fsync).
func (w *WAL) Flush(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked(lsn)
}

func (w *WAL) flushLocked(lsn uint64) error {
	if lsn <= w.flushed || len(w.buf) == 0 {
		return nil
	}
	// Write the whole buffer; partial flushes complicate framing for no
	// benefit at these sizes.
	off := int64(w.flushed-w.base) + walHeaderSize
	if _, err := w.f.WriteAt(w.buf, off); err != nil {
		// The buffer is retained (cleared only below, on success), so a
		// transient write failure is retryable without losing records.
		return &IOFault{Op: "wal write", Err: err}
	}
	w.flushed = w.bufStart + uint64(len(w.buf))
	w.bufStart = w.flushed
	w.buf = w.buf[:0]
	return nil
}

// Sync forces all buffered records to stable storage.
//
// netmarkvet:commit
func (w *WAL) Sync() error {
	return w.SyncTo(w.NextLSN())
}

// SyncTo makes the log durable through lsn (which must not exceed
// NextLSN at the time of the call), coalescing concurrent callers into a
// single fsync — group commit.  The first caller to find no fsync in
// flight becomes the leader: it flushes everything buffered so far and
// fsyncs outside the lock, so records appended meanwhile keep flowing
// and every follower whose LSN the group covers returns without its own
// fsync.
//
// netmarkvet:commit
func (w *WAL) SyncTo(lsn uint64) error {
	for {
		w.mu.Lock()
		if w.synced >= lsn {
			// Everything the caller needs was fsynced before any
			// poisoning event; acking it is honest even if later
			// records are in doubt.
			w.mu.Unlock()
			return nil
		}
		if w.poisoned != nil {
			err := &WALPoisonedError{Cause: w.poisoned}
			w.mu.Unlock()
			return err
		}
		if w.syncing {
			// Ride on the in-flight group, then re-check coverage.
			done := w.syncDone
			w.mu.Unlock()
			<-done
			continue
		}
		w.syncing = true
		w.syncDone = make(chan struct{})
		flushErr := w.flushLocked(w.bufStart + uint64(len(w.buf)))
		target := w.flushed
		// Capture the handle while the lock is held: checkpointTo swaps
		// w.f for the truncated successor and closes the old handle, and
		// it defers that swap until no group fsync is in flight (syncing
		// is true here), so f stays open for the Sync below.
		f := w.f
		w.mu.Unlock()

		var syncErr error
		if flushErr == nil {
			syncErr = f.Sync()
		}

		w.mu.Lock()
		if flushErr == nil && syncErr == nil && target > w.synced {
			w.synced = target
			w.syncs++
		}
		if syncErr != nil {
			// Sticky: a failed commit fsync poisons the log (see the
			// poisoned field).  Every waiting follower and every later
			// commit gets an error instead of a phantom ack.
			w.poisoned = syncErr
		}
		w.syncing = false
		close(w.syncDone)
		covered := w.synced >= lsn
		w.mu.Unlock()
		if flushErr != nil {
			return flushErr
		}
		if syncErr != nil {
			return &IOFault{Op: "wal fsync", Err: syncErr}
		}
		if covered {
			return nil
		}
		// Our records were appended after the flush point we led (only
		// possible for misuse with lsn > NextLSN); lead another group.
	}
}

// walCkptSuffix names the temp file a checkpoint builds next to the log.
const walCkptSuffix = ".ckpt"

// checkpointTo drops every record with LSN <= cut and advances the base
// to cut; records past cut (appended while the checkpoint's page flush
// was in flight) survive as the new log's tail, so a crash after the
// checkpoint cannot lose them.
//
// The switch is crash-atomic: the successor log — new header first, then
// the surviving tail — is built in a temp file, fsynced, and renamed over
// the live log.  At no instant does an empty log carry the old base LSN
// (the bug the old truncate-then-rewrite-header order had: a crash in
// that window made recovery hand out LSNs lagging already-flushed page
// LSNs, so post-crash records were skipped on the next replay).  fault,
// when non-nil, is the test-only crash injector: returning an error
// aborts mid-sequence, leaving the files exactly as a crash would.
func (w *WAL) checkpointTo(cut uint64, fault func(step string) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	// Wait out any in-flight group commit: its leader fsyncs the current
	// w.f outside the lock, and the swap below closes that handle.
	for w.syncing {
		done := w.syncDone
		w.mu.Unlock()
		<-done
		w.mu.Lock()
	}
	if err := w.flushLocked(w.bufStart + uint64(len(w.buf))); err != nil {
		return err
	}
	if cut < w.base {
		cut = w.base
	}
	if cut > w.flushed {
		cut = w.flushed
	}
	if cut == w.base && w.poisoned == nil {
		return nil // nothing to drop; the log already starts at cut
	}
	// A poisoned log is rebuilt even when there is nothing to drop: the
	// successor below is written and fsynced from scratch on a fresh
	// handle, which is the only way to restore trust after a failed
	// fsync left the old handle's durability unknowable.
	var tail []byte
	if n := w.flushed - cut; n > 0 {
		tail = make([]byte, n)
		if _, err := w.f.ReadAt(tail, int64(cut-w.base)+walHeaderSize); err != nil {
			return fmt.Errorf("ordbms: wal checkpoint tail read: %w", err)
		}
	}
	tmp := w.path + walCkptSuffix
	nf, err := w.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ordbms: wal checkpoint temp: %w", err)
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:8], walMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], cut)
	if _, err := nf.WriteAt(hdr[:], 0); err != nil {
		nf.Close()
		return err
	}
	if len(tail) > 0 {
		if _, err := nf.WriteAt(tail, walHeaderSize); err != nil {
			nf.Close()
			return err
		}
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return err
	}
	if fault != nil {
		if err := fault("wal-temp"); err != nil {
			nf.Close()
			return err
		}
	}
	// The rename is the commit point of the truncation.
	if err := w.fs.Rename(tmp, w.path); err != nil {
		nf.Close()
		return err
	}
	// Adopt the successor immediately: from here on nf IS the log at
	// w.path, and even if the directory fsync below fails, later appends
	// and fsyncs must land in the live file, not the unlinked old inode.
	w.f.Close()
	w.f = nf
	w.syncs++
	w.base = cut
	w.synced = w.flushed
	if fault != nil {
		if err := fault("wal-rename"); err != nil {
			return err
		}
	}
	if err := syncDir(w.fs, w.dir); err != nil {
		return err
	}
	// The live log is now a file that was written and fsynced end to end
	// on a fresh handle; any earlier fsync failure no longer taints it.
	w.poisoned = nil
	return nil
}

// Poisoned returns the sticky commit-fsync failure, or nil while the
// log is trustworthy.
func (w *WAL) Poisoned() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.poisoned
}

// BaseLSN returns the LSN of physical file offset 0 — the point the last
// completed checkpoint truncated through.  Snapshot stamps compare
// against it to decide whether persisted derived state is current.
func (w *WAL) BaseLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base
}

// SyncedLSN returns the LSN through which the log is durable.
func (w *WAL) SyncedLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.synced
}

// closeFile releases the file handle without flushing — the crash-close
// path (CloseDiscard) for tests and read-only benchmark reopens.
func (w *WAL) closeFile() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Appends returns the number of records appended (for tests and stats).
func (w *WAL) Appends() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends
}

// Syncs returns the number of fsyncs issued — the group-commit win is
// visible as syncs staying far below appends under batched ingest.
func (w *WAL) Syncs() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	if err := w.Sync(); err != nil {
		return err
	}
	return w.closeFile()
}

// WALRecord is a decoded log record handed to recovery.
type WALRecord struct {
	LSN  uint64 // end LSN of the record
	Type byte
	Page uint32
	Slot uint16
	Rec  []byte
}

// Replay scans the physical log and calls fn for each intact record.
// A torn or corrupt tail terminates the scan cleanly (crash semantics);
// torn=true reports that garbage bytes follow the last intact record —
// the caller must checkpoint the log before appending new records, or
// the next replay would stop at the garbage and never reach them.
func (w *WAL) Replay(fn func(r WALRecord) error) (torn bool, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, err := w.f.Stat()
	if err != nil {
		return false, err
	}
	pos := int64(walHeaderSize)
	lsn := w.base
	var frame [8]byte
	for pos < st.Size() {
		if _, err := w.f.ReadAt(frame[:], pos); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return true, nil // torn tail
			}
			return false, err
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		crc := binary.LittleEndian.Uint32(frame[4:8])
		if n == 0 || int64(n) > st.Size()-pos-8 {
			return true, nil // torn tail
		}
		body := make([]byte, n)
		if _, err := w.f.ReadAt(body, pos+8); err != nil {
			return true, nil
		}
		if crc32.ChecksumIEEE(body) != crc {
			return true, nil // corrupt tail
		}
		pos += 8 + int64(n)
		lsn = w.base + uint64(pos-walHeaderSize)
		r := WALRecord{LSN: lsn, Type: body[0]}
		switch body[0] {
		case walInsert, walUpdate:
			if len(body) < 7 {
				return true, nil
			}
			r.Page = binary.LittleEndian.Uint32(body[1:5])
			r.Slot = binary.LittleEndian.Uint16(body[5:7])
			r.Rec = body[7:]
		case walDelete:
			if len(body) < 7 {
				return true, nil
			}
			r.Page = binary.LittleEndian.Uint32(body[1:5])
			r.Slot = binary.LittleEndian.Uint16(body[5:7])
		case walAlloc:
			if len(body) < 5 {
				return true, nil
			}
			r.Page = binary.LittleEndian.Uint32(body[1:5])
			r.Rec = body[5:] // table name
		case walCreateTable, walCreateIndex, walDropTable:
			r.Rec = body[1:] // DDL payload, decoded by recovery
		case walCheckpoint:
			// informational only
		default:
			return true, nil
		}
		if err := fn(r); err != nil {
			return false, err
		}
	}
	return false, nil
}
