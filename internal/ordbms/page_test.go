package ordbms

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPageInsertGet(t *testing.T) {
	p := NewPage()
	rec := []byte("hello world")
	slot, err := p.Insert(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Get(slot)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rec) {
		t.Fatalf("got %q", got)
	}
}

func TestPageEmptyRecordRejected(t *testing.T) {
	p := NewPage()
	if _, err := p.Insert(nil); err == nil {
		t.Fatal("empty record should be rejected")
	}
}

func TestPageFillsAndReportsFull(t *testing.T) {
	p := NewPage()
	rec := make([]byte, 100)
	n := 0
	for {
		_, err := p.Insert(rec)
		if err == errPageFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	// 8192-byte page, 16-byte header, 104 bytes per record+slot.
	if n < 70 || n > 81 {
		t.Fatalf("fit %d 100-byte records, expected ~78", n)
	}
	if p.FreeSpace() >= 104 {
		t.Fatalf("page claims %d free after filling", p.FreeSpace())
	}
}

func TestPageDeleteAndSlotReuse(t *testing.T) {
	p := NewPage()
	s0, _ := p.Insert([]byte("aaaa"))
	s1, _ := p.Insert([]byte("bbbb"))
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(s0); err != ErrRecordDeleted {
		t.Fatalf("want ErrRecordDeleted, got %v", err)
	}
	if err := p.Delete(s0); err != ErrRecordDeleted {
		t.Fatalf("double delete: %v", err)
	}
	// New insert reuses the dead slot.
	s2, _ := p.Insert([]byte("cccc"))
	if s2 != s0 {
		t.Fatalf("expected slot reuse: got %d want %d", s2, s0)
	}
	// Survivor must be intact.
	got, err := p.Get(s1)
	if err != nil || !bytes.Equal(got, []byte("bbbb")) {
		t.Fatalf("survivor damaged: %q %v", got, err)
	}
}

func TestPageCompactPreservesSlots(t *testing.T) {
	p := NewPage()
	var slots []int
	for i := 0; i < 20; i++ {
		s, err := p.Insert(bytes.Repeat([]byte{byte('a' + i)}, 50))
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	// Delete every other record.
	for i := 0; i < 20; i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := p.FreeSpace()
	p.Compact()
	after := p.FreeSpace()
	if after <= before {
		t.Fatalf("compaction did not reclaim: before=%d after=%d", before, after)
	}
	// Survivors keep their slot numbers and contents.
	for i := 1; i < 20; i += 2 {
		got, err := p.Get(slots[i])
		if err != nil {
			t.Fatalf("slot %d: %v", slots[i], err)
		}
		want := bytes.Repeat([]byte{byte('a' + i)}, 50)
		if !bytes.Equal(got, want) {
			t.Fatalf("slot %d corrupted after compact", slots[i])
		}
	}
}

func TestPageUpdateInPlace(t *testing.T) {
	p := NewPage()
	s, _ := p.Insert([]byte("0123456789"))
	ok, err := p.UpdateInPlace(s, []byte("abcde"))
	if err != nil || !ok {
		t.Fatalf("shrinking update: ok=%v err=%v", ok, err)
	}
	got, _ := p.Get(s)
	if string(got) != "abcde" {
		t.Fatalf("got %q", got)
	}
	ok, err = p.UpdateInPlace(s, bytes.Repeat([]byte("x"), 100))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("growing update should not fit in place")
	}
}

func TestPageGetOutOfRange(t *testing.T) {
	p := NewPage()
	if _, err := p.Get(0); err == nil {
		t.Fatal("slot 0 of empty page should error")
	}
	if _, err := p.Get(-1); err == nil {
		t.Fatal("negative slot should error")
	}
}

func TestPageLSNRoundTrip(t *testing.T) {
	p := NewPage()
	p.SetLSN(0xDEADBEEFCAFE)
	if p.LSN() != 0xDEADBEEFCAFE {
		t.Fatalf("LSN = %x", p.LSN())
	}
	// LSN survives insert traffic.
	p.Insert([]byte("x"))
	if p.LSN() != 0xDEADBEEFCAFE {
		t.Fatal("insert clobbered LSN")
	}
}

// Property: any sequence of inserts and deletes leaves live records
// readable with exactly their original contents.
func TestQuickPageWorkload(t *testing.T) {
	f := func(sizes []uint8, deleteMask uint32) bool {
		p := NewPage()
		type live struct {
			slot int
			data []byte
		}
		var lives []live
		for i, sz := range sizes {
			n := int(sz)%200 + 1
			rec := bytes.Repeat([]byte{byte(i)}, n)
			slot, err := p.Insert(rec)
			if err == errPageFull {
				p.Compact()
				slot, err = p.Insert(rec)
				if err == errPageFull {
					break
				}
			}
			if err != nil {
				return false
			}
			lives = append(lives, live{slot, rec})
			if deleteMask&(1<<(uint(i)%32)) != 0 && len(lives) > 1 {
				victim := lives[0]
				lives = lives[1:]
				if p.Delete(victim.slot) != nil {
					return false
				}
			}
		}
		for _, l := range lives {
			got, err := p.Get(l.slot)
			if err != nil || !bytes.Equal(got, l.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValueEncodeDecodeRoundTrip(t *testing.T) {
	rows := []Row{
		{},
		{I(0)},
		{I(-1), I(1), I(1 << 60)},
		{S(""), S("hello"), S("üñíçødé 日本語")},
		{F(3.14159), F(-0.0), F(1e308)},
		{Bl(true), Bl(false)},
		{B(nil), B([]byte{0, 1, 2, 255})},
		{Null(), I(7), Null(), S("x")},
	}
	for i, r := range rows {
		enc := EncodeRow(r)
		dec, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if len(dec) != len(r) {
			t.Fatalf("row %d arity", i)
		}
		for j := range r {
			if !dec[j].Equal(r[j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, dec[j], r[j])
			}
		}
	}
}

func TestDecodeRowCorruption(t *testing.T) {
	enc := EncodeRow(Row{I(42), S("hello")})
	// Truncations must error, never panic.
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeRow(enc[:cut]); err == nil && cut < len(enc) {
			// Some prefixes may parse as a shorter valid row only if the
			// header still matches; with 2 columns declared they cannot.
			t.Fatalf("truncation at %d silently accepted", cut)
		}
	}
	if _, err := DecodeRow(nil); err == nil {
		t.Fatal("nil record accepted")
	}
}

// Property: EncodeRow/DecodeRow round-trips arbitrary values.
func TestQuickRowRoundTrip(t *testing.T) {
	f := func(i int64, s string, fl float64, bl bool, by []byte) bool {
		r := Row{I(i), S(s), F(fl), Bl(bl), B(by), Null()}
		dec, err := DecodeRow(EncodeRow(r))
		if err != nil || len(dec) != 6 {
			return false
		}
		// NaN != NaN under Compare; encode bit-exactly instead.
		if fl != fl {
			return dec[2].Float != dec[2].Float
		}
		for j := range r {
			if !dec[j].Equal(r[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	vals := []Value{
		Null(), I(-5), I(0), I(7), F(-2.5), F(6.9), F(7.0),
		S(""), S("a"), S("b"), B([]byte{1}), B([]byte{1, 2}), Bl(false), Bl(true),
	}
	for _, a := range vals {
		if a.Compare(a) != 0 {
			t.Fatalf("%v != itself", a)
		}
		for _, b := range vals {
			ab, ba := a.Compare(b), b.Compare(a)
			if ab != -ba {
				t.Fatalf("antisymmetry violated: %v vs %v (%d, %d)", a, b, ab, ba)
			}
		}
	}
	// Int/float cross-type ordering.
	if I(7).Compare(F(7.0)) != 0 {
		t.Fatal("7 != 7.0")
	}
	if I(7).Compare(F(6.9)) != 1 {
		t.Fatal("7 should exceed 6.9")
	}
}
