package ordbms

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"netmark/internal/vfs"
)

// The catalog records table metadata: schemas, heap page lists, and which
// indexes to rebuild on open.  It is persisted as JSON next to the data
// file at every checkpoint — the simple, inspectable choice for a
// reproduction (a production engine would self-host it in pages).

type catalogFile struct {
	// Generation counts catalog saves.  Derived-state snapshots (the
	// engine's own index/heap-meta snapshot and any store-level snapshot
	// written by a pre-checkpoint hook) are stamped with the generation
	// they were written under; a snapshot whose stamp does not match the
	// catalog on disk is from a different checkpoint and must be ignored.
	Generation uint64         `json:"generation"`
	Tables     []catalogTable `json:"tables"`
}

type catalogTable struct {
	Name    string          `json:"name"`
	Columns []catalogColumn `json:"columns"`
	Pages   []uint32        `json:"pages"`
	Indexes []string        `json:"indexes"`
}

type catalogColumn struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

const catalogName = "catalog.json"

// saveCatalogLocked persists the catalog under the given generation.
// The write is crash-durable: temp file, fsync, rename, directory fsync.
// Without the fsync a crash right after DB.Checkpoint truncates the WAL
// could lose the catalog while the log that could have reconstructed the
// table layout is already gone.
func (db *DB) saveCatalogLocked(gen uint64) error {
	if db.dir == "" {
		return nil
	}
	cf := catalogFile{Generation: gen}
	for _, name := range db.tableNamesLocked() {
		t := db.tables[name]
		ct := catalogTable{Name: t.name, Pages: t.heap.Pages()}
		for _, c := range t.schema.Columns {
			ct.Columns = append(ct.Columns, catalogColumn{Name: c.Name, Type: uint8(c.Type)})
		}
		for col := range t.indexes {
			ct.Indexes = append(ct.Indexes, col)
		}
		cf.Tables = append(cf.Tables, ct)
	}
	b, err := json.MarshalIndent(&cf, "", "  ")
	if err != nil {
		return err
	}
	ci := CheckpointInfo{Dir: db.dir, FS: db.fs, Fault: db.ckptFault}
	return ci.WriteSnapshotFile(catalogName, b, "catalog")
}

// writeFileSync writes data to path through fsys and fsyncs it before
// returning.
func writeFileSync(fsys vfs.FS, path string, data []byte) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-completed rename survives a crash.
func syncDir(fsys vfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// loadCatalog rebuilds the table set from the on-disk catalog during
// Open, before the DB is shared with any other goroutine.
//
// netmarkvet:ignore lockcheck — open-time, single-goroutine
func (db *DB) loadCatalog() error {
	path := filepath.Join(db.dir, catalogName)
	b, err := db.fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // fresh store
		}
		return err
	}
	var cf catalogFile
	if err := json.Unmarshal(b, &cf); err != nil {
		return fmt.Errorf("ordbms: corrupt catalog: %w", err)
	}
	db.catalogGen = cf.Generation
	// A valid derived snapshot replaces the per-table heap scans (row
	// count, free-space map, secondary index rebuilds) with direct loads.
	der := db.loadDerivedSnapshot(cf.Generation)
	for _, ct := range cf.Tables {
		cols := make([]Column, len(ct.Columns))
		for i, c := range ct.Columns {
			cols[i] = Column{Name: c.Name, Type: Type(c.Type)}
		}
		schema, err := NewSchema(cols...)
		if err != nil {
			return err
		}
		// Adopt pages the WAL allocated to this table after the catalog
		// was last saved — the catalog only learns about pages at
		// checkpoints, so after a crash the log is the page-ownership
		// truth for the gap.
		grew := false
		known := make(map[uint32]bool, len(ct.Pages))
		for _, p := range ct.Pages {
			known[p] = true
		}
		for _, p := range db.walAllocs[ct.Name] {
			if !known[p] {
				known[p] = true
				ct.Pages = append(ct.Pages, p)
				grew = true
				db.allocsGrew = true
			}
		}
		if der != nil && !grew {
			if t, ok := der.openTable(db, ct, schema); ok {
				t.heap.tag = ct.Name
				db.tables[ct.Name] = t
				db.DerivedLoads++
				continue
			}
		}
		heap, err := OpenHeapFile(db.pool, db.wal, ct.Pages)
		if err != nil {
			return err
		}
		heap.tag = ct.Name
		t := &Table{db: db, name: ct.Name, schema: schema, heap: heap, indexes: make(map[string]*Index)}
		for _, col := range ct.Indexes {
			if err := t.buildIndexLocked(col); err != nil {
				return err
			}
		}
		db.tables[ct.Name] = t
	}
	return nil
}
