package ordbms

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The catalog records table metadata: schemas, heap page lists, and which
// indexes to rebuild on open.  It is persisted as JSON next to the data
// file at every checkpoint — the simple, inspectable choice for a
// reproduction (a production engine would self-host it in pages).

type catalogFile struct {
	Tables []catalogTable `json:"tables"`
}

type catalogTable struct {
	Name    string          `json:"name"`
	Columns []catalogColumn `json:"columns"`
	Pages   []uint32        `json:"pages"`
	Indexes []string        `json:"indexes"`
}

type catalogColumn struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

const catalogName = "catalog.json"

func (db *DB) saveCatalogLocked() error {
	if db.dir == "" {
		return nil
	}
	var cf catalogFile
	for _, name := range db.tableNamesLocked() {
		t := db.tables[name]
		ct := catalogTable{Name: t.name, Pages: t.heap.Pages()}
		for _, c := range t.schema.Columns {
			ct.Columns = append(ct.Columns, catalogColumn{Name: c.Name, Type: uint8(c.Type)})
		}
		for col := range t.indexes {
			ct.Indexes = append(ct.Indexes, col)
		}
		cf.Tables = append(cf.Tables, ct)
	}
	b, err := json.MarshalIndent(&cf, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(db.dir, catalogName+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(db.dir, catalogName))
}

func (db *DB) loadCatalog() error {
	path := filepath.Join(db.dir, catalogName)
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // fresh store
		}
		return err
	}
	var cf catalogFile
	if err := json.Unmarshal(b, &cf); err != nil {
		return fmt.Errorf("ordbms: corrupt catalog: %w", err)
	}
	for _, ct := range cf.Tables {
		cols := make([]Column, len(ct.Columns))
		for i, c := range ct.Columns {
			cols[i] = Column{Name: c.Name, Type: Type(c.Type)}
		}
		schema, err := NewSchema(cols...)
		if err != nil {
			return err
		}
		heap, err := OpenHeapFile(db.pool, db.wal, ct.Pages)
		if err != nil {
			return err
		}
		t := &Table{db: db, name: ct.Name, schema: schema, heap: heap, indexes: make(map[string]*Index)}
		for _, col := range ct.Indexes {
			if err := t.buildIndex(col); err != nil {
				return err
			}
		}
		db.tables[ct.Name] = t
	}
	return nil
}
