package ordbms

import "fmt"

// applyInsertAt places rec at an exact slot during recovery.  Unlike
// Insert, the slot number is dictated by the log record; the slot
// directory is extended with dead slots as needed so slot numbers match
// the pre-crash layout.
func (p *Page) applyInsertAt(slot int, rec []byte) error {
	for p.numSlots() <= slot {
		if p.freeUpper()-p.freeLower() < slotSize {
			return fmt.Errorf("ordbms: recovery overflow extending slot directory")
		}
		p.setSlot(p.numSlots(), slotDead, 0)
		p.setNumSlots(p.numSlots() + 1)
		p.setFreeLower(p.freeLower() + slotSize)
	}
	if off, _ := p.slotAt(slot); off != slotDead {
		// Slot already live: the record reached disk before the crash via
		// an earlier flush; overwrite deterministically.
		p.setSlot(slot, slotDead, 0)
		p.Compact()
	}
	if p.freeUpper()-p.freeLower() < len(rec) {
		p.Compact()
		if p.freeUpper()-p.freeLower() < len(rec) {
			return fmt.Errorf("ordbms: recovery insert does not fit (%d bytes)", len(rec))
		}
	}
	newUpper := p.freeUpper() - len(rec)
	copy(p.data[newUpper:], rec)
	p.setFreeUpper(newUpper)
	p.setSlot(slot, newUpper, len(rec))
	return nil
}

// Recover replays the WAL against the disk, bringing pages forward to the
// log's end state.  It must run before any heap is opened.  Pages touched
// during recovery are flushed and the log is checkpointed, so a second
// crash during recovery is safe (replay is idempotent thanks to page
// LSNs).
func Recover(disk DiskManager, pool *BufferPool, wal *WAL) (replayed int, err error) {
	err = wal.Replay(func(r WALRecord) error {
		if r.Page == 0 || r.Page >= disk.NumPages() {
			// The page was allocated after the last page flush but its
			// allocation never reached the data file: re-extend the file.
			for disk.NumPages() <= r.Page {
				if _, aerr := disk.AllocatePage(); aerr != nil {
					return aerr
				}
			}
		}
		f, ferr := pool.Fetch(r.Page)
		if ferr != nil {
			return ferr
		}
		defer pool.Unpin(f, true)
		f.Latch.Lock()
		defer f.Latch.Unlock()
		if f.Page.LSN() >= r.LSN {
			return nil // already applied before the crash
		}
		switch r.Type {
		case walInsert:
			if aerr := f.Page.applyInsertAt(int(r.Slot), r.Rec); aerr != nil {
				return aerr
			}
		case walDelete:
			if derr := f.Page.Delete(int(r.Slot)); derr != nil && derr != ErrRecordDeleted {
				return derr
			}
		case walUpdate:
			ok, uerr := f.Page.UpdateInPlace(int(r.Slot), r.Rec)
			if uerr == ErrRecordDeleted {
				// Update follows an unreplayed insert only when the page
				// was flushed between them, which the LSN check excludes.
				return fmt.Errorf("ordbms: recovery update of deleted slot %d.%d", r.Page, r.Slot)
			}
			if uerr != nil {
				return uerr
			}
			if !ok {
				return fmt.Errorf("ordbms: recovery update does not fit at %d.%d", r.Page, r.Slot)
			}
		}
		f.Page.SetLSN(r.LSN)
		replayed++
		return nil
	})
	if err != nil {
		return replayed, err
	}
	if replayed > 0 {
		if err := pool.FlushAll(); err != nil {
			return replayed, err
		}
	}
	if err := wal.Checkpoint(); err != nil {
		return replayed, err
	}
	return replayed, nil
}
