package ordbms

import (
	"encoding/binary"
	"fmt"
)

// applyInsertAt places rec at an exact slot during recovery.  Unlike
// Insert, the slot number is dictated by the log record; the slot
// directory is extended with dead slots as needed so slot numbers match
// the pre-crash layout.
func (p *Page) applyInsertAt(slot int, rec []byte) error {
	for p.numSlots() <= slot {
		if p.freeUpper()-p.freeLower() < slotSize {
			return fmt.Errorf("ordbms: recovery overflow extending slot directory")
		}
		p.setSlot(p.numSlots(), slotDead, 0)
		p.setNumSlots(p.numSlots() + 1)
		p.setFreeLower(p.freeLower() + slotSize)
	}
	if off, _ := p.slotAt(slot); off != slotDead {
		// Slot already live: the record reached disk before the crash via
		// an earlier flush; overwrite deterministically.
		p.setSlot(slot, slotDead, 0)
		p.Compact()
	}
	if p.freeUpper()-p.freeLower() < len(rec) {
		p.Compact()
		if p.freeUpper()-p.freeLower() < len(rec) {
			return fmt.Errorf("ordbms: recovery insert does not fit (%d bytes)", len(rec))
		}
	}
	newUpper := p.freeUpper() - len(rec)
	copy(p.data[newUpper:], rec)
	p.setFreeUpper(newUpper)
	p.setSlot(slot, newUpper, len(rec))
	return nil
}

// Recover replays the WAL against the disk, bringing pages forward to the
// log's end state.  It must run before any heap is opened.  Replay is
// idempotent thanks to page LSNs, so a crash during recovery is safe: the
// next open replays again.  The log itself is left untouched — DB.Open
// runs a full checkpoint afterwards when anything was replayed, so the
// catalog (including pages adopted since its last save) is rewritten
// before the records backing them are dropped.
//
// allocs maps table name to the pages it adopted per the log — the pages
// a crash-time catalog may not know about yet.  ops lists the DDL the
// log carries (table creates with schemas, index creates, drops) in log
// order, so tables whose entire existence postdates the catalog can be
// rebuilt instead of silently losing their committed rows.
func Recover(disk DiskManager, pool *BufferPool, wal *WAL) (replayed int, allocs map[string][]uint32, ops []RecoveredOp, torn bool, err error) {
	allocs = make(map[string][]uint32)
	torn, err = wal.Replay(func(r WALRecord) error {
		switch r.Type {
		case walAlloc:
			name := string(r.Rec)
			allocs[name] = append(allocs[name], r.Page)
		case walCreateTable:
			name, rest, ok := readWALString(r.Rec)
			if !ok {
				return nil
			}
			// A create starts a fresh incarnation: any pages logged for
			// this name so far belong to a dropped predecessor and must
			// not be adopted by the new table.
			delete(allocs, name)
			ncols, sz := binary.Uvarint(rest)
			if sz <= 0 {
				return nil
			}
			rest = rest[sz:]
			cols := make([]Column, 0, ncols)
			for ; ncols > 0; ncols-- {
				var cname string
				if cname, rest, ok = readWALString(rest); !ok || len(rest) < 1 {
					return nil
				}
				cols = append(cols, Column{Name: cname, Type: Type(rest[0])})
				rest = rest[1:]
			}
			ops = append(ops, RecoveredOp{Kind: walCreateTable, Table: name, Cols: cols})
			return nil
		case walCreateIndex:
			name, rest, ok := readWALString(r.Rec)
			if !ok {
				return nil
			}
			col, _, ok := readWALString(rest)
			if !ok {
				return nil
			}
			ops = append(ops, RecoveredOp{Kind: walCreateIndex, Table: name, Column: col})
			return nil
		case walDropTable:
			name, _, ok := readWALString(r.Rec)
			if !ok {
				return nil
			}
			// The dropped incarnation's pages are abandoned (DropTable
			// semantics); they must not leak into a later same-named table.
			delete(allocs, name)
			ops = append(ops, RecoveredOp{Kind: walDropTable, Table: name})
			return nil
		}
		if r.Page == 0 || r.Page >= disk.NumPages() {
			// The page was allocated after the last page flush but its
			// allocation never reached the data file: re-extend the file.
			for disk.NumPages() <= r.Page {
				if _, aerr := disk.AllocatePage(); aerr != nil {
					return aerr
				}
			}
		}
		if r.Type == walAlloc || r.Type == walCheckpoint {
			return nil // no page mutation to apply
		}
		f, ferr := pool.Fetch(r.Page)
		if ferr != nil {
			return ferr
		}
		defer pool.Unpin(f, true)
		f.Latch.Lock()
		defer f.Latch.Unlock()
		if f.Page.LSN() >= r.LSN {
			return nil // already applied before the crash
		}
		switch r.Type {
		case walInsert:
			if aerr := f.Page.applyInsertAt(int(r.Slot), r.Rec); aerr != nil {
				return aerr
			}
		case walDelete:
			if derr := f.Page.Delete(int(r.Slot)); derr != nil && derr != ErrRecordDeleted {
				return derr
			}
		case walUpdate:
			ok, uerr := f.Page.UpdateInPlace(int(r.Slot), r.Rec)
			if uerr == ErrRecordDeleted {
				// Update follows an unreplayed insert only when the page
				// was flushed between them, which the LSN check excludes.
				return fmt.Errorf("ordbms: recovery update of deleted slot %d.%d", r.Page, r.Slot)
			}
			if uerr != nil {
				return uerr
			}
			if !ok {
				return fmt.Errorf("ordbms: recovery update does not fit at %d.%d", r.Page, r.Slot)
			}
		}
		f.Page.SetLSN(r.LSN)
		replayed++
		return nil
	})
	return replayed, allocs, ops, torn, err
}

// RecoveredOp is one logged DDL operation, in log order.
type RecoveredOp struct {
	Kind   byte // walCreateTable, walCreateIndex, or walDropTable
	Table  string
	Column string   // index creates
	Cols   []Column // table creates
}
