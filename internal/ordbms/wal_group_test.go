package ordbms

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"netmark/internal/vfs"
)

// TestWALGroupCommitConcurrent hammers the group-commit path: many
// goroutines append records and demand durability; afterwards every
// record must be synced and replayable, with (usually far) fewer fsyncs
// than commit calls.
func TestWALGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(vfs.OS, filepath.Join(dir, "wal.nmlog"))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lsn := w.LogInsert(uint32(g), uint16(i), []byte("payload"))
				if err := w.SyncTo(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if got := w.Appends(); got != goroutines*perG {
		t.Fatalf("appends = %d, want %d", got, goroutines*perG)
	}
	if syncs := w.Syncs(); syncs == 0 || syncs > goroutines*perG {
		t.Fatalf("syncs = %d, want in (0, %d]", syncs, goroutines*perG)
	}
	count := 0
	torn, err := w.Replay(func(r WALRecord) error {
		if r.Type == walInsert {
			count++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("fully synced log reported a torn tail")
	}
	if count != goroutines*perG {
		t.Fatalf("replayed %d inserts, want %d", count, goroutines*perG)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALSyncToAlreadyCovered verifies followers whose LSN an earlier
// group covered return without an extra fsync.
func TestWALSyncToAlreadyCovered(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(vfs.OS, filepath.Join(dir, "wal.nmlog"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	lsn1 := w.LogInsert(1, 0, []byte("a"))
	lsn2 := w.LogInsert(1, 1, []byte("b"))
	if err := w.SyncTo(lsn2); err != nil {
		t.Fatal(err)
	}
	syncs := w.Syncs()
	if err := w.SyncTo(lsn1); err != nil {
		t.Fatal(err)
	}
	if w.Syncs() != syncs {
		t.Fatal("covered SyncTo issued a redundant fsync")
	}
}

// TestCommitCoalescesAcrossGoroutines exercises DB.Commit's group commit
// end to end: concurrent insert+commit loops on a durable store, then a
// clean reopen with every row present.
func TestCommitCoalescesAcrossGoroutines(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("T", MustSchema(
		Column{Name: "g", Type: TypeInt},
		Column{Name: "i", Type: TypeInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 6, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := tbl.Insert(Row{I(int64(g)), I(int64(i))}); err != nil {
					t.Error(err)
					return
				}
				if err := db.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Table("T").Rows(); got != goroutines*perG {
		t.Fatalf("rows after reopen = %d, want %d", got, goroutines*perG)
	}
}

func TestEncodeRowOffsetsPatchable(t *testing.T) {
	row := Row{
		I(42),
		S("variable-width prefix"),
		B([]byte{1, 2, 3, 4, 5, 6, 7, 8}),
		S("suffix"),
	}
	rec, offs := EncodeRowOffsets(row)
	if want := EncodeRow(row); string(rec) != string(want) {
		t.Fatal("EncodeRowOffsets encoding diverges from EncodeRow")
	}
	// Patch the bytes column payload in place and decode.
	copy(rec[offs[2]:offs[2]+8], []byte{9, 9, 9, 9, 9, 9, 9, 9})
	got, err := DecodeRow(rec)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got[2].Bytes {
		if b != 9 {
			t.Fatalf("patched byte %d = %d", i, b)
		}
	}
	if got[1].Str != "variable-width prefix" || got[3].Str != "suffix" {
		t.Fatal("patch corrupted neighboring columns")
	}
}

// TestWALSyncDuringCheckpoint races group commits against log
// truncation.  checkpointTo swaps w.f for the truncated successor and
// closes the old handle; a group-commit leader fsyncs its captured
// handle outside the lock.  Before checkpointTo learned to wait out an
// in-flight group, this closed the file under the leader's feet and
// commits failed with "file already closed" (and the race detector
// flagged the unsynchronized w.f access).
func TestWALSyncDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(vfs.OS, filepath.Join(dir, "wal.nmlog"))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 4, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lsn := w.LogInsert(uint32(g+1), uint16(i), []byte("payload"))
				if err := w.SyncTo(lsn); err != nil {
					t.Errorf("SyncTo: %v", err)
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for stop := false; !stop; {
		select {
		case <-done:
			stop = true
		default:
		}
		if err := w.checkpointTo(w.SyncedLSN(), nil); err != nil {
			t.Errorf("checkpointTo: %v", err)
			break
		}
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALCheckpointWaitsForInflightSync pins the invariant directly:
// while a group-commit leader is fsyncing (syncing set, lock released),
// checkpointTo must not swap and close the log file.  Before the fix it
// returned immediately, closing the handle the leader was about to
// fsync.
func TestWALCheckpointWaitsForInflightSync(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(vfs.OS, filepath.Join(dir, "wal.nmlog"))
	if err != nil {
		t.Fatal(err)
	}
	lsn := w.LogInsert(1, 0, []byte("payload"))
	if err := w.SyncTo(lsn); err != nil {
		t.Fatal(err)
	}

	// Pose as a group-commit leader mid-fsync.
	w.mu.Lock()
	w.syncing = true
	w.syncDone = make(chan struct{})
	w.mu.Unlock()

	ckptDone := make(chan error, 1)
	go func() { ckptDone <- w.checkpointTo(w.SyncedLSN(), nil) }()
	select {
	case <-ckptDone:
		t.Fatal("checkpointTo completed while a group commit was in flight")
	case <-time.After(50 * time.Millisecond):
	}

	// Leader finishes; the checkpoint may now proceed.
	w.mu.Lock()
	w.syncing = false
	close(w.syncDone)
	w.mu.Unlock()
	if err := <-ckptDone; err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
