package ordbms

import "fmt"

// RowID is a physical row address: page number and slot within the page.
// It is the direct analogue of an Oracle ROWID, which the paper exploits
// "for very fast traversal between nodes that are related": following a
// RowID is a single buffer-pool fetch, no index involved.
//
// RowIDs are stable for the lifetime of a record: deletes tombstone the
// slot and page compaction preserves slot numbers.
type RowID struct {
	Page uint32
	Slot uint16
}

// ZeroRowID is the invalid RowID used as a null link.
var ZeroRowID = RowID{}

// IsZero reports whether the RowID is the null link.
func (r RowID) IsZero() bool { return r == ZeroRowID }

// Uint64 packs the RowID into a single integer for storage in a column.
func (r RowID) Uint64() uint64 { return uint64(r.Page)<<16 | uint64(r.Slot) }

// RowIDFromUint64 unpacks a RowID previously packed with Uint64.
func RowIDFromUint64(v uint64) RowID {
	return RowID{Page: uint32(v >> 16), Slot: uint16(v & 0xFFFF)}
}

func (r RowID) String() string { return fmt.Sprintf("rid(%d.%d)", r.Page, r.Slot) }

// Less orders RowIDs in physical (page, slot) order.
func (r RowID) Less(o RowID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}
