// Package ordbms implements the storage substrate that the paper assumes:
// an object-relational database engine with slotted pages, a buffer pool,
// heap files addressed by physical row identifiers, write-ahead logging,
// and crash recovery.
//
// The NETMARK paper stores every document in two universal tables (XML and
// DOC) inside an Oracle ORDBMS and leans on Oracle's physical ROWIDs for
// fast parent/sibling traversal between nodes.  This package reproduces
// those properties: a RowID here is a physical (page, slot) address, so a
// traversal hop is one buffer-pool fetch rather than an index lookup.
//
// This package owns durable on-disk state, so every committing rename
// must follow write-temp → fsync → rename → fsync-dir.
//
// netmarkvet:persistence
package ordbms

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Type identifies the dynamic type of a Value.
type Type uint8

// Value types supported by the engine.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeString
	TypeBytes
	TypeBool
)

func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "STRING"
	case TypeBytes:
		return "BYTES"
	case TypeBool:
		return "BOOL"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Value is a single column value.  The zero Value is NULL.
type Value struct {
	Type  Type
	Int   int64
	Float float64
	Str   string
	Bytes []byte
	Bool  bool
}

// Null returns the NULL value.
func Null() Value { return Value{Type: TypeNull} }

// I builds an integer value.
func I(v int64) Value { return Value{Type: TypeInt, Int: v} }

// F builds a float value.
func F(v float64) Value { return Value{Type: TypeFloat, Float: v} }

// S builds a string value.
func S(v string) Value { return Value{Type: TypeString, Str: v} }

// B builds a bytes value.
func B(v []byte) Value { return Value{Type: TypeBytes, Bytes: v} }

// Bl builds a boolean value.
func Bl(v bool) Value { return Value{Type: TypeBool, Bool: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Type == TypeNull }

// String renders the value for debugging and CLI output.
func (v Value) String() string {
	switch v.Type {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return fmt.Sprintf("%d", v.Int)
	case TypeFloat:
		return fmt.Sprintf("%g", v.Float)
	case TypeString:
		return v.Str
	case TypeBytes:
		return fmt.Sprintf("%x", v.Bytes)
	case TypeBool:
		return fmt.Sprintf("%t", v.Bool)
	}
	return "?"
}

// Compare orders two values.  NULL sorts before everything; mixed numeric
// comparisons promote ints to floats; otherwise mismatched types compare
// by type tag so that sorting is total.
func (v Value) Compare(o Value) int {
	if v.Type == TypeNull || o.Type == TypeNull {
		switch {
		case v.Type == TypeNull && o.Type == TypeNull:
			return 0
		case v.Type == TypeNull:
			return -1
		default:
			return 1
		}
	}
	if v.Type != o.Type {
		if (v.Type == TypeInt && o.Type == TypeFloat) || (v.Type == TypeFloat && o.Type == TypeInt) {
			a, b := v.asFloat(), o.asFloat()
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}
		if v.Type < o.Type {
			return -1
		}
		return 1
	}
	switch v.Type {
	case TypeInt:
		switch {
		case v.Int < o.Int:
			return -1
		case v.Int > o.Int:
			return 1
		}
		return 0
	case TypeFloat:
		switch {
		case v.Float < o.Float:
			return -1
		case v.Float > o.Float:
			return 1
		}
		return 0
	case TypeString:
		switch {
		case v.Str < o.Str:
			return -1
		case v.Str > o.Str:
			return 1
		}
		return 0
	case TypeBytes:
		a, b := v.Bytes, o.Bytes
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for i := 0; i < n; i++ {
			if a[i] != b[i] {
				if a[i] < b[i] {
					return -1
				}
				return 1
			}
		}
		switch {
		case len(a) < len(b):
			return -1
		case len(a) > len(b):
			return 1
		}
		return 0
	case TypeBool:
		switch {
		case !v.Bool && o.Bool:
			return -1
		case v.Bool && !o.Bool:
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports value equality under Compare semantics.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

func (v Value) asFloat() float64 {
	if v.Type == TypeInt {
		return float64(v.Int)
	}
	return v.Float
}

// Row is an ordered tuple of values matching a table schema.
type Row []Value

// Clone deep-copies a row, including byte slices.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	for i := range out {
		if out[i].Type == TypeBytes {
			b := make([]byte, len(out[i].Bytes))
			copy(b, out[i].Bytes)
			out[i].Bytes = b
		}
	}
	return out
}

// EncodeRow serialises a row into a compact binary record.
// Layout: varint column count, then per column one type byte followed by a
// type-specific payload (zigzag varints for ints, 8-byte IEEE for floats,
// length-prefixed bytes for strings).
func EncodeRow(r Row) []byte {
	return encodeRow(r, nil)
}

// EncodeRowOffsets serialises a row like EncodeRow and additionally
// returns, per column, the byte offset of that column's payload within
// the record (for NULLs, the offset just past the type byte).  Callers
// that later rewrite a fixed-width payload — the XML store's 8-byte
// RowID link columns — can patch the bytes directly and update the
// record in place without re-encoding.
func EncodeRowOffsets(r Row) ([]byte, []int) {
	offs := make([]int, len(r))
	return encodeRow(r, offs), offs
}

// encodeRow is the single definition of the record format.  When offs is
// non-nil it receives each column's payload offset.
func encodeRow(r Row, offs []int) []byte {
	buf := make([]byte, 0, 16+len(r)*8)
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for i, v := range r {
		buf = append(buf, byte(v.Type))
		// Only strings and bytes carry a length prefix; every other
		// payload starts right after the type byte.
		switch v.Type {
		case TypeString:
			buf = binary.AppendUvarint(buf, uint64(len(v.Str)))
		case TypeBytes:
			buf = binary.AppendUvarint(buf, uint64(len(v.Bytes)))
		}
		if offs != nil {
			offs[i] = len(buf)
		}
		switch v.Type {
		case TypeNull:
		case TypeInt:
			buf = binary.AppendVarint(buf, v.Int)
		case TypeFloat:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.Float))
			buf = append(buf, tmp[:]...)
		case TypeString:
			buf = append(buf, v.Str...)
		case TypeBytes:
			buf = append(buf, v.Bytes...)
		case TypeBool:
			if v.Bool {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

// DecodeRow parses a record previously produced by EncodeRow.
func DecodeRow(b []byte) (Row, error) {
	n, off := binary.Uvarint(b)
	if off <= 0 {
		return nil, fmt.Errorf("ordbms: corrupt record header")
	}
	if n > uint64(len(b)) {
		return nil, fmt.Errorf("ordbms: implausible column count %d", n)
	}
	row := make(Row, n)
	if err := decodeColumns(b, off, row); err != nil {
		return nil, err
	}
	return row, nil
}

// DecodeRowInto decodes a record into a caller-provided row, avoiding the
// per-fetch Row allocation of DecodeRow — callers with a known schema keep
// a fixed-size array on the stack.  The record must hold exactly len(row)
// columns.  String and byte payloads are copied, never aliased, so the
// decoded values outlive the source buffer.
//
// netmarkvet:hotpath
func DecodeRowInto(b []byte, row Row) error {
	n, off := binary.Uvarint(b)
	if off <= 0 {
		return fmt.Errorf("ordbms: corrupt record header")
	}
	if n != uint64(len(row)) {
		return fmt.Errorf("ordbms: record has %d columns, caller expects %d", n, len(row))
	}
	return decodeColumns(b, off, row)
}

// decodeColumns parses len(row) column payloads starting at b[pos].
func decodeColumns(b []byte, pos int, row Row) error {
	for i := range row {
		if pos >= len(b) {
			return fmt.Errorf("ordbms: truncated record at column %d", i)
		}
		t := Type(b[pos])
		pos++
		var v Value
		v.Type = t
		switch t {
		case TypeNull:
		case TypeInt:
			x, m := binary.Varint(b[pos:])
			if m <= 0 {
				return fmt.Errorf("ordbms: corrupt int at column %d", i)
			}
			v.Int = x
			pos += m
		case TypeFloat:
			if pos+8 > len(b) {
				return fmt.Errorf("ordbms: corrupt float at column %d", i)
			}
			v.Float = math.Float64frombits(binary.LittleEndian.Uint64(b[pos:]))
			pos += 8
		case TypeString:
			l, m := binary.Uvarint(b[pos:])
			if m <= 0 || pos+m+int(l) > len(b) {
				return fmt.Errorf("ordbms: corrupt string at column %d", i)
			}
			pos += m
			// netmarkvet:allocok — payload copy is the documented
			// contract: decoded values outlive the page latch
			v.Str = string(b[pos : pos+int(l)])
			pos += int(l)
		case TypeBytes:
			l, m := binary.Uvarint(b[pos:])
			if m <= 0 || pos+m+int(l) > len(b) {
				return fmt.Errorf("ordbms: corrupt bytes at column %d", i)
			}
			pos += m
			// netmarkvet:allocok — payload copy, same contract as strings
			v.Bytes = append([]byte(nil), b[pos:pos+int(l)]...)
			pos += int(l)
		case TypeBool:
			if pos >= len(b) {
				return fmt.Errorf("ordbms: corrupt bool at column %d", i)
			}
			v.Bool = b[pos] == 1
			pos++
		default:
			return fmt.Errorf("ordbms: unknown value type %d at column %d", t, i)
		}
		row[i] = v
	}
	return nil
}
