package sgml

import (
	"bufio"
	"io"
	"strings"
)

// Serialize renders the subtree as XML text.  Text is escaped; the output
// of Serialize re-parses (in ModeXML) to an equivalent tree.
func Serialize(n *Node) string {
	var sb strings.Builder
	serialize(&sb, n, false, 0)
	return sb.String()
}

// SerializeIndent renders the subtree with two-space indentation for
// human-facing output (composed documents, CLI results).
func SerializeIndent(n *Node) string {
	var sb strings.Builder
	serialize(&sb, n, true, 0)
	return sb.String()
}

// Write streams the subtree to w as compact XML without materialising the
// whole document in memory first.
func Write(w io.Writer, n *Node) error { return writeStream(w, n, false) }

// WriteIndent streams the subtree to w with two-space indentation — the
// serving layer's path for result and document responses.
func WriteIndent(w io.Writer, n *Node) error { return writeStream(w, n, true) }

func writeStream(w io.Writer, n *Node, indent bool) error {
	bw, ok := w.(*bufio.Writer)
	if !ok {
		bw = bufio.NewWriter(w)
	}
	serialize(bw, n, indent, 0)
	return bw.Flush()
}

// serialWriter is the sink serialize renders into: both strings.Builder
// and bufio.Writer satisfy it, so the string and streaming forms share
// one renderer.  bufio.Writer latches the first underlying error and
// reports it from Flush.
type serialWriter interface {
	WriteString(s string) (int, error)
	WriteByte(c byte) error
}

// serialize is the shared renderer beneath Serialize and the streaming
// Write/WriteIndent fast paths; per-node work must not allocate beyond
// what the sink itself buffers.
//
// netmarkvet:hotpath
func serialize(sb serialWriter, n *Node, indent bool, depth int) {
	pad := func() {
		if indent {
			for i := 0; i < depth; i++ {
				sb.WriteString("  ")
			}
		}
	}
	nl := func() {
		if indent {
			sb.WriteByte('\n')
		}
	}
	switch n.Kind {
	case DocumentNode:
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			serialize(sb, c, indent, depth)
		}
	case ElementNode:
		pad()
		sb.WriteByte('<')
		sb.WriteString(n.Name)
		for _, a := range n.Attrs {
			sb.WriteByte(' ')
			sb.WriteString(a.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeAttr(a.Value))
			sb.WriteByte('"')
		}
		if n.FirstChild == nil {
			sb.WriteString("/>")
			nl()
			return
		}
		sb.WriteByte('>')
		// Single text child renders inline.
		if n.FirstChild == n.LastChild && n.FirstChild.Kind == TextNode {
			sb.WriteString(escapeText(n.FirstChild.Data))
		} else {
			nl()
			for c := n.FirstChild; c != nil; c = c.NextSibling {
				serialize(sb, c, indent, depth+1)
			}
			pad()
		}
		sb.WriteString("</")
		sb.WriteString(n.Name)
		sb.WriteByte('>')
		nl()
	case TextNode:
		pad()
		sb.WriteString(escapeText(n.Data))
		nl()
	case CommentNode:
		pad()
		sb.WriteString("<!--")
		sb.WriteString(n.Data)
		sb.WriteString("-->")
		nl()
	case DoctypeNode:
		pad()
		sb.WriteString("<!")
		sb.WriteString(n.Data)
		sb.WriteByte('>')
		nl()
	case ProcInstNode:
		pad()
		sb.WriteString("<?")
		sb.WriteString(n.Name)
		if n.Data != "" {
			sb.WriteByte(' ')
			sb.WriteString(n.Data)
		}
		sb.WriteString("?>")
		nl()
	}
}
