package sgml

import (
	"strconv"
	"strings"
)

// namedEntities covers the XML five plus the HTML entities that actually
// occur in enterprise documents; unknown entities pass through verbatim,
// which is the permissive behaviour the NETMARK parser needs (it must
// never reject a document).
var namedEntities = map[string]string{
	"amp":    "&",
	"lt":     "<",
	"gt":     ">",
	"quot":   `"`,
	"apos":   "'",
	"nbsp":   " ",
	"copy":   "©",
	"reg":    "®",
	"trade":  "™",
	"mdash":  "—",
	"ndash":  "–",
	"ldquo":  "“",
	"rdquo":  "”",
	"lsquo":  "‘",
	"rsquo":  "’",
	"hellip": "…",
	"deg":    "°",
	"plusmn": "±",
	"times":  "×",
	"divide": "÷",
	"frac12": "½",
	"sect":   "§",
	"para":   "¶",
	"middot": "·",
	"bull":   "•",
	"dagger": "†",
	"larr":   "←",
	"rarr":   "→",
	"euro":   "€",
	"pound":  "£",
	"cent":   "¢",
	"yen":    "¥",
}

// decodeEntities replaces character references in s.  Malformed
// references are left verbatim.
func decodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for {
		sb.WriteString(s[:amp])
		s = s[amp:]
		semi := strings.IndexByte(s, ';')
		if semi < 0 || semi > 32 {
			// No terminator nearby: literal ampersand.
			sb.WriteByte('&')
			s = s[1:]
		} else {
			ent := s[1:semi]
			if rep, ok := decodeOneEntity(ent); ok {
				sb.WriteString(rep)
				s = s[semi+1:]
			} else {
				sb.WriteByte('&')
				s = s[1:]
			}
		}
		amp = strings.IndexByte(s, '&')
		if amp < 0 {
			sb.WriteString(s)
			return sb.String()
		}
	}
}

func decodeOneEntity(ent string) (string, bool) {
	if ent == "" {
		return "", false
	}
	if ent[0] == '#' {
		body := ent[1:]
		base := 10
		if len(body) > 0 && (body[0] == 'x' || body[0] == 'X') {
			base = 16
			body = body[1:]
		}
		n, err := strconv.ParseUint(body, base, 32)
		if err != nil || n == 0 || n > 0x10FFFF {
			return "", false
		}
		return string(rune(n)), true
	}
	if rep, ok := namedEntities[ent]; ok {
		return rep, true
	}
	return "", false
}

// The escape replacers are built once: a strings.Replacer costs an
// allocation (plus a lazily built lookup table) per construction, and
// the serializer calls these for every text run and attribute of every
// rendered node.  Replacer is safe for concurrent use, and Replace on
// a string with nothing to escape returns the input without copying.
var (
	textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
)

// escapeText escapes text content for XML serialisation.
func escapeText(s string) string { return textEscaper.Replace(s) }

// escapeAttr escapes an attribute value for XML serialisation.
func escapeAttr(s string) string { return attrEscaper.Replace(s) }
