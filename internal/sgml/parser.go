package sgml

import (
	"io"
	"strings"
)

// Mode selects parsing dialect.
type Mode uint8

// Parsing modes.
const (
	// ModeXML parses well-formed-ish XML: names keep their case, all
	// elements require explicit closing (but the parser still recovers
	// from unclosed elements at EOF rather than failing).
	ModeXML Mode = iota
	// ModeHTML parses permissive HTML: names are lowercased, void
	// elements never take children, and implied end tags are inserted
	// (</p> before a new <p>, </li> before a new <li>, and so on).
	ModeHTML
)

// voidElements are HTML elements that never have content.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// impliedEnd maps an opening element to the set of open elements it
// implicitly closes, per the HTML parsing conventions that matter for
// document upmarking.
var impliedEnd = map[string]map[string]bool{
	"p":     {"p": true},
	"li":    {"li": true},
	"dt":    {"dt": true, "dd": true},
	"dd":    {"dt": true, "dd": true},
	"tr":    {"tr": true, "td": true, "th": true},
	"td":    {"td": true, "th": true},
	"th":    {"td": true, "th": true},
	"thead": {"tbody": true},
	"tbody": {"thead": true},
	"option": {
		"option": true,
	},
	"h1": {"p": true}, "h2": {"p": true}, "h3": {"p": true},
	"h4": {"p": true}, "h5": {"p": true}, "h6": {"p": true},
}

// headingCloses lists block elements whose start also closes an open <p>.
var blockClosesP = map[string]bool{
	"div": true, "table": true, "ul": true, "ol": true, "pre": true,
	"blockquote": true, "section": true, "article": true,
}

// Parse reads the full input and parses it.
func Parse(r io.Reader, mode Mode) (*Node, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseString(string(b), mode)
}

// ParseString parses a document held in memory.  The returned node is a
// DocumentNode whose children are the top-level constructs.  The parser
// is recovering: real-world enterprise documents are frequently malformed
// and the NETMARK ingest path must accept them, so errors are reserved
// for genuinely unusable input.
func ParseString(src string, mode Mode) (*Node, error) {
	html := mode == ModeHTML
	lx := newLexer(src, html)
	doc := &Node{Kind: DocumentNode, Name: "#document"}
	cur := doc
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		switch tok.kind {
		case tokEOF:
			return doc, nil
		case tokText:
			if strings.TrimSpace(tok.data) == "" {
				// Preserve a single space between inline content, drop
				// pure layout whitespace between block elements.
				if cur.LastChild != nil && cur.LastChild.Kind == TextNode {
					continue
				}
				continue
			}
			// Merge adjacent text nodes.
			if cur.LastChild != nil && cur.LastChild.Kind == TextNode {
				cur.LastChild.Data += tok.data
			} else {
				cur.AppendChild(NewText(tok.data))
			}
		case tokCDATA:
			if cur.LastChild != nil && cur.LastChild.Kind == TextNode {
				cur.LastChild.Data += tok.data
			} else {
				cur.AppendChild(NewText(tok.data))
			}
		case tokComment:
			cur.AppendChild(&Node{Kind: CommentNode, Data: tok.data})
		case tokDoctype:
			cur.AppendChild(&Node{Kind: DoctypeNode, Data: tok.data})
		case tokProcInst:
			cur.AppendChild(&Node{Kind: ProcInstNode, Name: tok.name, Data: tok.data})
		case tokSelfClose:
			el := NewElement(tok.name, tok.attrs...)
			cur.AppendChild(el)
		case tokStartTag:
			if html {
				cur = htmlImplyEnds(cur, tok.name)
			}
			el := NewElement(tok.name, tok.attrs...)
			cur.AppendChild(el)
			if html && voidElements[tok.name] {
				// void: do not descend
			} else {
				cur = el
			}
		case tokEndTag:
			// Pop to the matching open element; ignore unmatched closers.
			target := cur
			for target != nil && target.Kind != DocumentNode && target.Name != tok.name {
				target = target.Parent
			}
			if target != nil && target.Kind == ElementNode {
				cur = target.Parent
			}
		}
	}
}

// htmlImplyEnds pops elements that an opening tag implicitly closes.
func htmlImplyEnds(cur *Node, opening string) *Node {
	for cur.Kind == ElementNode {
		closes := impliedEnd[opening]
		if closes != nil && closes[cur.Name] {
			cur = cur.Parent
			continue
		}
		if blockClosesP[opening] && cur.Name == "p" {
			cur = cur.Parent
			continue
		}
		break
	}
	return cur
}

// SniffMode guesses the parse mode from content: documents that look like
// HTML (doctype html, <html>, or unclosed-tag conventions) parse in HTML
// mode; everything else as XML.
func SniffMode(src string) Mode {
	head := src
	if len(head) > 1024 {
		head = head[:1024]
	}
	lower := strings.ToLower(head)
	switch {
	case strings.Contains(lower, "<!doctype html"),
		strings.Contains(lower, "<html"),
		strings.Contains(lower, "<body"),
		strings.Contains(lower, "<br>"),
		strings.Contains(lower, "<p>"):
		return ModeHTML
	}
	return ModeXML
}
