package sgml

import "testing"

// The serializer calls escapeText/escapeAttr for every text run and
// attribute it renders; building the strings.Replacer per call (as an
// earlier version did) costs an allocation each time, and escaping a
// string with nothing to escape must return it without copying.
func TestEscapeCleanStringZeroAlloc(t *testing.T) {
	clean := "cryogenic fuel pump telemetry with no markup at all"
	var sink string
	if n := testing.AllocsPerRun(100, func() { sink = escapeText(clean) }); n != 0 {
		t.Errorf("escapeText(clean) = %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { sink = escapeAttr(clean) }); n != 0 {
		t.Errorf("escapeAttr(clean) = %.1f allocs/op, want 0", n)
	}
	_ = sink
}

// Escaping still works after the hoist.
func TestEscapeReplaces(t *testing.T) {
	if got, want := escapeText(`a<b>&c`), "a&lt;b&gt;&amp;c"; got != want {
		t.Errorf("escapeText = %q, want %q", got, want)
	}
	if got, want := escapeAttr(`say "hi" & <go>`), "say &quot;hi&quot; &amp; &lt;go&gt;"; got != want {
		t.Errorf("escapeAttr = %q, want %q", got, want)
	}
}
