package sgml

import "strings"

// NodeClass is the paper's five-way node data type, "specified in the
// HTML or XML configuration files passed by the daemon" and stored in the
// NODETYPE column of the XML table (§2.1.1):
//
//	(1) ELEMENT, (2) TEXT, (3) CONTEXT, (4) INTENSE, (5) SIMULATION.
//
// CONTEXT marks section headings ("similar to the <H1> and <H2> header
// tags commonly found within HTML pages"), TEXT marks character data,
// INTENSE marks emphasised inline runs, SIMULATION marks layout
// constructs (tables, lists) whose visual structure is simulated rather
// than semantic, and ELEMENT is everything else.
type NodeClass uint8

// The five NETMARK node data types, numbered as in the paper.
const (
	ClassElement    NodeClass = 1
	ClassText       NodeClass = 2
	ClassContext    NodeClass = 3
	ClassIntense    NodeClass = 4
	ClassSimulation NodeClass = 5
)

func (c NodeClass) String() string {
	switch c {
	case ClassElement:
		return "ELEMENT"
	case ClassText:
		return "TEXT"
	case ClassContext:
		return "CONTEXT"
	case ClassIntense:
		return "INTENSE"
	case ClassSimulation:
		return "SIMULATION"
	}
	return "UNKNOWN"
}

// Config is the node-type configuration: which element names map to
// which class.  It stands in for NETMARK's per-format configuration
// files.
type Config struct {
	// Name of the configuration, e.g. "html" or "xml".
	Name string
	// Context lists element names classified CONTEXT.
	Context map[string]bool
	// Intense lists element names classified INTENSE.
	Intense map[string]bool
	// Simulation lists element names classified SIMULATION.
	Simulation map[string]bool
	// CaseInsensitive lowercases names before lookup (HTML).
	CaseInsensitive bool
}

// Classify returns the NodeClass for a parse node under this config.
func (cfg *Config) Classify(n *Node) NodeClass {
	switch n.Kind {
	case TextNode:
		return ClassText
	case ElementNode:
		name := n.Name
		if cfg.CaseInsensitive {
			name = strings.ToLower(name)
		}
		switch {
		case cfg.Context[name]:
			return ClassContext
		case cfg.Intense[name]:
			return ClassIntense
		case cfg.Simulation[name]:
			return ClassSimulation
		default:
			return ClassElement
		}
	default:
		return ClassElement
	}
}

// HTMLConfig returns the configuration for web documents: h1-h6 and
// title/caption headings are CONTEXT, inline emphasis is INTENSE, layout
// containers are SIMULATION.
func HTMLConfig() *Config {
	return &Config{
		Name: "html",
		Context: set("h1", "h2", "h3", "h4", "h5", "h6",
			"title", "caption", "legend", "summary"),
		Intense: set("b", "strong", "i", "em", "u", "mark",
			"cite", "dfn", "var", "kbd", "code"),
		Simulation: set("table", "thead", "tbody", "tfoot", "tr", "td",
			"th", "ul", "ol", "li", "dl", "dt", "dd", "pre", "figure"),
		CaseInsensitive: true,
	}
}

// XMLConfig returns the configuration for upmarked and generic XML
// documents: the normalized <context> element plus common heading-like
// element names are CONTEXT.
func XMLConfig() *Config {
	return &Config{
		Name: "xml",
		Context: set("context", "title", "heading", "header",
			"section-title", "caption", "name"),
		Intense: set("intense", "emphasis", "em", "b", "strong",
			"keyword", "highlight"),
		Simulation: set("table", "row", "cell", "list", "item",
			"figure", "grid"),
	}
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}
