// Package sgml implements the "NETMARK SGML parser" of the paper: a
// permissive SGML/XML/HTML parser that decomposes documents into their
// constituent nodes for schema-less storage.  Unlike schema-centric XML
// mappings, the parser "models the document itself (similar to the DOM),
// and its object tree structure is the same for all XML documents"
// (§2.1.1) — any document parses into the same Node shape.
//
// The package also implements the paper's five-way node classification
// (ELEMENT, TEXT, CONTEXT, INTENSE, SIMULATION), driven by configuration
// equivalent to "the HTML or XML configuration files passed by the
// daemon".
package sgml

import "strings"

// NodeKind is the structural kind of a parse node.
type NodeKind uint8

// Structural node kinds.
const (
	DocumentNode NodeKind = iota
	ElementNode
	TextNode
	CommentNode
	DoctypeNode
	ProcInstNode
)

// Attr is one attribute of an element.
type Attr struct {
	Name  string
	Value string
}

// Node is one node of a parsed document tree.
type Node struct {
	Kind  NodeKind
	Name  string // element name (lowercased in HTML mode), PI target
	Data  string // text, comment or doctype content
	Attrs []Attr

	Parent      *Node
	FirstChild  *Node
	LastChild   *Node
	PrevSibling *Node
	NextSibling *Node
}

// NewElement creates a detached element node.
func NewElement(name string, attrs ...Attr) *Node {
	return &Node{Kind: ElementNode, Name: name, Attrs: attrs}
}

// NewText creates a detached text node.
func NewText(data string) *Node {
	return &Node{Kind: TextNode, Data: data}
}

// AppendChild attaches c as the last child of n.
func (n *Node) AppendChild(c *Node) *Node {
	c.Parent = n
	c.PrevSibling = n.LastChild
	c.NextSibling = nil
	if n.LastChild != nil {
		n.LastChild.NextSibling = c
	} else {
		n.FirstChild = c
	}
	n.LastChild = c
	return c
}

// RemoveChild detaches c from n.
func (n *Node) RemoveChild(c *Node) {
	if c.Parent != n {
		return
	}
	if c.PrevSibling != nil {
		c.PrevSibling.NextSibling = c.NextSibling
	} else {
		n.FirstChild = c.NextSibling
	}
	if c.NextSibling != nil {
		c.NextSibling.PrevSibling = c.PrevSibling
	} else {
		n.LastChild = c.PrevSibling
	}
	c.Parent, c.PrevSibling, c.NextSibling = nil, nil, nil
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttr sets or replaces an attribute.
func (n *Node) SetAttr(name, value string) {
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{name, value})
}

// Text returns the concatenated text content of the subtree, with
// fragments separated by single spaces where element boundaries fall.
func (n *Node) Text() string {
	var sb strings.Builder
	n.collectText(&sb)
	return strings.Join(strings.Fields(sb.String()), " ")
}

func (n *Node) collectText(sb *strings.Builder) {
	if n.Kind == TextNode {
		sb.WriteString(n.Data)
		sb.WriteByte(' ')
		return
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		c.collectText(sb)
	}
}

// Walk visits the subtree in document (pre-) order.  Returning false from
// fn prunes descent into the node's children.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		c.Walk(fn)
	}
}

// Find returns the first descendant element with the given name.
func (n *Node) Find(name string) *Node {
	var found *Node
	n.Walk(func(x *Node) bool {
		if found != nil {
			return false
		}
		if x != n && x.Kind == ElementNode && x.Name == name {
			found = x
			return false
		}
		return true
	})
	return found
}

// FindAll returns all descendant elements with the given name in document
// order.
func (n *Node) FindAll(name string) []*Node {
	var out []*Node
	n.Walk(func(x *Node) bool {
		if x != n && x.Kind == ElementNode && x.Name == name {
			out = append(out, x)
		}
		return true
	})
	return out
}

// Children returns the direct child nodes as a slice.
func (n *Node) Children() []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		out = append(out, c)
	}
	return out
}

// ChildElements returns the direct element children.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if c.Kind == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// CountNodes returns the number of nodes in the subtree including n.
func (n *Node) CountNodes() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}

// Root walks up to the topmost ancestor.
func (n *Node) Root() *Node {
	r := n
	for r.Parent != nil {
		r = r.Parent
	}
	return r
}

// Clone deep-copies the subtree (detached).
func (n *Node) Clone() *Node {
	cp := &Node{Kind: n.Kind, Name: n.Name, Data: n.Data}
	if n.Attrs != nil {
		cp.Attrs = append([]Attr(nil), n.Attrs...)
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		cp.AppendChild(c.Clone())
	}
	return cp
}
