package sgml

import (
	"fmt"
	"strings"
)

// tokenKind enumerates lexer outputs.
type tokenKind uint8

const (
	tokText tokenKind = iota
	tokStartTag
	tokEndTag
	tokSelfClose
	tokComment
	tokDoctype
	tokProcInst
	tokCDATA
	tokEOF
)

// token is one lexical unit of an SGML document.
type token struct {
	kind  tokenKind
	name  string
	data  string
	attrs []Attr
	pos   int // byte offset, for error messages
}

// lexer scans SGML/XML/HTML input into tokens.  It is deliberately
// permissive: unterminated constructs at EOF become text, stray '<' that
// does not open a plausible tag is literal text.
type lexer struct {
	src  string
	pos  int
	html bool // lowercase names, tolerate unquoted attribute values
}

func newLexer(src string, html bool) *lexer {
	return &lexer{src: src, html: html}
}

func (l *lexer) errf(format string, args ...interface{}) error {
	line := 1 + strings.Count(l.src[:l.pos], "\n")
	return fmt.Errorf("sgml: line %d: "+format, append([]interface{}{line}, args...)...)
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	if l.src[l.pos] != '<' {
		// Text run until the next '<' or EOF.
		end := strings.IndexByte(l.src[l.pos:], '<')
		if end < 0 {
			l.pos = len(l.src)
		} else {
			l.pos += end
		}
		return token{kind: tokText, data: decodeEntities(l.src[start:l.pos]), pos: start}, nil
	}
	// A '<' that cannot start a markup construct is literal text.
	if l.pos+1 >= len(l.src) {
		l.pos = len(l.src)
		return token{kind: tokText, data: "<", pos: start}, nil
	}
	switch c := l.src[l.pos+1]; {
	case c == '!':
		if strings.HasPrefix(l.src[l.pos:], "<!--") {
			return l.lexComment()
		}
		if strings.HasPrefix(l.src[l.pos:], "<![CDATA[") {
			return l.lexCDATA()
		}
		return l.lexDoctype()
	case c == '?':
		return l.lexProcInst()
	case c == '/':
		return l.lexEndTag()
	case isNameStart(rune(c)):
		return l.lexStartTag()
	default:
		// Literal '<'.
		l.pos++
		return token{kind: tokText, data: "<", pos: start}, nil
	}
}

func (l *lexer) lexComment() (token, error) {
	start := l.pos
	end := strings.Index(l.src[l.pos+4:], "-->")
	if end < 0 {
		l.pos = len(l.src)
		return token{kind: tokComment, data: l.src[start+4:], pos: start}, nil
	}
	data := l.src[l.pos+4 : l.pos+4+end]
	l.pos += 4 + end + 3
	return token{kind: tokComment, data: data, pos: start}, nil
}

func (l *lexer) lexCDATA() (token, error) {
	start := l.pos
	end := strings.Index(l.src[l.pos+9:], "]]>")
	if end < 0 {
		l.pos = len(l.src)
		return token{kind: tokCDATA, data: l.src[start+9:], pos: start}, nil
	}
	data := l.src[l.pos+9 : l.pos+9+end]
	l.pos += 9 + end + 3
	return token{kind: tokCDATA, data: data, pos: start}, nil
}

func (l *lexer) lexDoctype() (token, error) {
	start := l.pos
	end := strings.IndexByte(l.src[l.pos:], '>')
	if end < 0 {
		l.pos = len(l.src)
		return token{kind: tokDoctype, data: l.src[start+2:], pos: start}, nil
	}
	data := l.src[l.pos+2 : l.pos+end]
	l.pos += end + 1
	return token{kind: tokDoctype, data: strings.TrimSpace(data), pos: start}, nil
}

func (l *lexer) lexProcInst() (token, error) {
	start := l.pos
	end := strings.Index(l.src[l.pos:], "?>")
	if end < 0 {
		l.pos = len(l.src)
		return token{kind: tokProcInst, data: l.src[start+2:], pos: start}, nil
	}
	body := l.src[l.pos+2 : l.pos+end]
	l.pos += end + 2
	name := body
	if i := strings.IndexAny(body, " \t\r\n"); i >= 0 {
		name = body[:i]
		body = strings.TrimSpace(body[i:])
	} else {
		body = ""
	}
	return token{kind: tokProcInst, name: name, data: body, pos: start}, nil
}

func (l *lexer) lexEndTag() (token, error) {
	start := l.pos
	l.pos += 2
	name := l.lexName()
	if name == "" {
		return token{}, l.errf("malformed end tag")
	}
	// Skip to '>'.
	for l.pos < len(l.src) && l.src[l.pos] != '>' {
		l.pos++
	}
	if l.pos < len(l.src) {
		l.pos++
	}
	if l.html {
		name = strings.ToLower(name)
	}
	return token{kind: tokEndTag, name: name, pos: start}, nil
}

func (l *lexer) lexStartTag() (token, error) {
	start := l.pos
	l.pos++ // consume '<'
	name := l.lexName()
	if name == "" {
		return token{}, l.errf("malformed start tag")
	}
	if l.html {
		name = strings.ToLower(name)
	}
	var attrs []Attr
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			// Unterminated tag at EOF: treat as opened.
			return token{kind: tokStartTag, name: name, attrs: attrs, pos: start}, nil
		}
		if strings.HasPrefix(l.src[l.pos:], "/>") {
			l.pos += 2
			return token{kind: tokSelfClose, name: name, attrs: attrs, pos: start}, nil
		}
		if l.src[l.pos] == '>' {
			l.pos++
			return token{kind: tokStartTag, name: name, attrs: attrs, pos: start}, nil
		}
		aname := l.lexName()
		if aname == "" {
			// Skip stray character rather than failing the document.
			l.pos++
			continue
		}
		if l.html {
			aname = strings.ToLower(aname)
		}
		l.skipSpace()
		aval := ""
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			l.skipSpace()
			aval = l.lexAttrValue()
		}
		attrs = append(attrs, Attr{Name: aname, Value: decodeEntities(aval)})
	}
}

func (l *lexer) lexAttrValue() string {
	if l.pos >= len(l.src) {
		return ""
	}
	q := l.src[l.pos]
	if q == '"' || q == '\'' {
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], q)
		if end < 0 {
			v := l.src[l.pos:]
			l.pos = len(l.src)
			return v
		}
		v := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return v
	}
	// Unquoted value (HTML tolerance).
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '>' || (c == '/' && strings.HasPrefix(l.src[l.pos:], "/>")) {
			break
		}
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexName() string {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if l.pos == start {
			if !isNameStart(c) {
				break
			}
		} else if !isNameChar(c) {
			break
		}
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\r', '\n':
			l.pos++
		default:
			return
		}
	}
}

func isNameStart(c rune) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c rune) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}
