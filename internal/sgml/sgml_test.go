package sgml

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string, mode Mode) *Node {
	t.Helper()
	doc, err := ParseString(src, mode)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return doc
}

func TestParseSimpleXML(t *testing.T) {
	doc := mustParse(t, `<doc><title>Hello</title><body>World</body></doc>`, ModeXML)
	root := doc.FirstChild
	if root == nil || root.Name != "doc" {
		t.Fatalf("root = %v", root)
	}
	title := root.Find("title")
	if title == nil || title.Text() != "Hello" {
		t.Fatalf("title = %v", title)
	}
	if got := doc.Find("body").Text(); got != "World" {
		t.Fatalf("body text = %q", got)
	}
}

func TestParseAttributes(t *testing.T) {
	doc := mustParse(t, `<a href="http://x" id='i1' flag data-n="5&amp;6">t</a>`, ModeXML)
	a := doc.FirstChild
	if v, ok := a.Attr("href"); !ok || v != "http://x" {
		t.Fatalf("href = %q %v", v, ok)
	}
	if v, _ := a.Attr("id"); v != "i1" {
		t.Fatalf("id = %q", v)
	}
	if _, ok := a.Attr("flag"); !ok {
		t.Fatal("bare attribute lost")
	}
	if v, _ := a.Attr("data-n"); v != "5&6" {
		t.Fatalf("entity in attribute: %q", v)
	}
}

func TestParseSelfClosingAndNesting(t *testing.T) {
	doc := mustParse(t, `<r><leaf/><mid><inner>x</inner></mid></r>`, ModeXML)
	r := doc.FirstChild
	kids := r.ChildElements()
	if len(kids) != 2 || kids[0].Name != "leaf" || kids[1].Name != "mid" {
		t.Fatalf("children = %v", kids)
	}
	if kids[0].FirstChild != nil {
		t.Fatal("self-closing element has children")
	}
}

func TestParseEntitiesInText(t *testing.T) {
	doc := mustParse(t, `<t>a &lt; b &amp;&amp; c &gt; d &#65; &#x42; &nbsp;e &unknown; f</t>`, ModeXML)
	got := doc.FirstChild.Text()
	want := "a < b && c > d A B e &unknown; f"
	if got != want {
		t.Fatalf("text = %q, want %q", got, want)
	}
}

func TestParseCommentDoctypePI(t *testing.T) {
	doc := mustParse(t, `<?xml version="1.0"?><!DOCTYPE doc><!-- note --><doc/>`, ModeXML)
	kinds := []NodeKind{}
	for c := doc.FirstChild; c != nil; c = c.NextSibling {
		kinds = append(kinds, c.Kind)
	}
	want := []NodeKind{ProcInstNode, DoctypeNode, CommentNode, ElementNode}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestParseCDATA(t *testing.T) {
	doc := mustParse(t, `<t><![CDATA[<not> & markup]]></t>`, ModeXML)
	if got := doc.FirstChild.Text(); got != "<not> & markup" {
		t.Fatalf("cdata text = %q", got)
	}
}

func TestParseHTMLVoidElements(t *testing.T) {
	doc := mustParse(t, `<p>one<br>two<img src="x">three</p>`, ModeHTML)
	p := doc.FirstChild
	if p.Name != "p" {
		t.Fatalf("root = %v", p.Name)
	}
	if got := p.Text(); got != "one two three" {
		t.Fatalf("text = %q", got)
	}
	br := p.Find("br")
	if br == nil || br.FirstChild != nil {
		t.Fatal("void element swallowed content")
	}
}

func TestParseHTMLImpliedEndTags(t *testing.T) {
	doc := mustParse(t, `<ul><li>one<li>two<li>three</ul><p>a<p>b`, ModeHTML)
	ul := doc.FirstChild
	lis := ul.FindAll("li")
	if len(lis) != 3 {
		t.Fatalf("lis = %d", len(lis))
	}
	for i, want := range []string{"one", "two", "three"} {
		if lis[i].Text() != want {
			t.Fatalf("li[%d] = %q", i, lis[i].Text())
		}
		if lis[i].Parent != ul {
			t.Fatalf("li[%d] nested inside %v", i, lis[i].Parent.Name)
		}
	}
	ps := doc.FindAll("p")
	if len(ps) != 2 || ps[0].Text() != "a" || ps[1].Text() != "b" {
		t.Fatalf("paragraphs = %v", ps)
	}
}

func TestParseHTMLCaseFolding(t *testing.T) {
	doc := mustParse(t, `<DIV CLASS="Big"><H1>T</H1></DIV>`, ModeHTML)
	div := doc.FirstChild
	if div.Name != "div" {
		t.Fatalf("name = %q", div.Name)
	}
	if v, _ := div.Attr("class"); v != "Big" {
		t.Fatalf("attribute value must keep case: %q", v)
	}
	if doc.Find("h1") == nil {
		t.Fatal("H1 not folded")
	}
}

func TestParseHTMLHeadingClosesParagraph(t *testing.T) {
	doc := mustParse(t, `<p>intro<h2>Heading</h2><p>body`, ModeHTML)
	h2 := doc.Find("h2")
	if h2 == nil {
		t.Fatal("h2 missing")
	}
	if h2.Parent.Kind != DocumentNode {
		t.Fatalf("h2 nested in %v, should be top-level", h2.Parent.Name)
	}
}

func TestParseRecoversFromUnclosedElements(t *testing.T) {
	doc := mustParse(t, `<a><b><c>deep`, ModeXML)
	if doc.Find("c") == nil || doc.Find("c").Text() != "deep" {
		t.Fatal("unclosed elements lost content")
	}
}

func TestParseIgnoresUnmatchedEndTags(t *testing.T) {
	doc := mustParse(t, `<a>x</b></zz>y</a>`, ModeXML)
	a := doc.FirstChild
	if a.Text() != "x y" && a.Text() != "xy" {
		t.Fatalf("text = %q", a.Text())
	}
}

func TestParseStrayLessThan(t *testing.T) {
	doc := mustParse(t, `<t>3 < 5 and 2 <= 4</t>`, ModeXML)
	got := doc.FirstChild.Text()
	if !strings.Contains(got, "3 < 5") {
		t.Fatalf("stray < mangled: %q", got)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	srcs := []string{
		`<doc><title>Hello &amp; welcome</title><s a="1"/></doc>`,
		`<r><x>1</x><y attr="v&quot;q">2</y><z/></r>`,
		`<outer><inner>text with &lt;angle&gt;</inner></outer>`,
	}
	for _, src := range srcs {
		doc1 := mustParse(t, src, ModeXML)
		out := Serialize(doc1)
		doc2 := mustParse(t, out, ModeXML)
		if !treeEqual(doc1, doc2) {
			t.Fatalf("round trip changed tree:\n src=%s\n out=%s", src, out)
		}
	}
}

func treeEqual(a, b *Node) bool {
	if a.Kind != b.Kind || a.Name != b.Name || a.Data != b.Data || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	ca, cb := a.Children(), b.Children()
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if !treeEqual(ca[i], cb[i]) {
			return false
		}
	}
	return true
}

// Property: serialising any generated tree and re-parsing it yields an
// equivalent tree (print/parse round trip on the XML dialect).
func TestQuickSerializeParseRoundTrip(t *testing.T) {
	names := []string{"a", "b", "sec", "title", "item"}
	texts := []string{"hello", "x < y", "a & b", "tail>", `"quoted"`, "plain text"}
	type genSpec struct {
		Shape []uint8
	}
	f := func(spec genSpec) bool {
		// Build a deterministic tree from the shape bytes.
		doc := &Node{Kind: DocumentNode, Name: "#document"}
		root := NewElement("root")
		doc.AppendChild(root)
		cur := root
		for _, b := range spec.Shape {
			switch b % 4 {
			case 0:
				el := NewElement(names[int(b/4)%len(names)])
				cur.AppendChild(el)
				cur = el
			case 1:
				cur.AppendChild(NewText(texts[int(b/4)%len(texts)]))
			case 2:
				if cur.Parent != nil && cur != root {
					cur = cur.Parent
				}
			case 3:
				el := NewElement(names[int(b/4)%len(names)])
				el.SetAttr("k", texts[int(b/4)%len(texts)])
				cur.AppendChild(el)
			}
		}
		out := Serialize(doc)
		re, err := ParseString(out, ModeXML)
		if err != nil {
			return false
		}
		// Text merging may join adjacent text nodes; compare text and
		// element structure instead of exact tree equality.
		return canonical(doc) == canonical(re)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// canonical produces a structure string that is invariant under adjacent
// text-node merging.
func canonical(n *Node) string {
	var sb strings.Builder
	var walk func(*Node)
	walk = func(x *Node) {
		switch x.Kind {
		case DocumentNode:
			for c := x.FirstChild; c != nil; c = c.NextSibling {
				walk(c)
			}
		case ElementNode:
			sb.WriteString("<" + x.Name)
			for _, a := range x.Attrs {
				sb.WriteString(" " + a.Name + "=" + a.Value)
			}
			sb.WriteString(">")
			// Merge adjacent text children.
			var txt strings.Builder
			flush := func() {
				if txt.Len() > 0 {
					sb.WriteString("[" + txt.String() + "]")
					txt.Reset()
				}
			}
			for c := x.FirstChild; c != nil; c = c.NextSibling {
				if c.Kind == TextNode {
					txt.WriteString(c.Data)
					continue
				}
				flush()
				walk(c)
			}
			flush()
			sb.WriteString("</" + x.Name + ">")
		case TextNode:
			sb.WriteString("[" + x.Data + "]")
		}
	}
	walk(n)
	return sb.String()
}

func TestNodeTreeSurgery(t *testing.T) {
	root := NewElement("root")
	a := root.AppendChild(NewElement("a"))
	b := root.AppendChild(NewElement("b"))
	c := root.AppendChild(NewElement("c"))
	if a.NextSibling != b || b.NextSibling != c || c.PrevSibling != b {
		t.Fatal("sibling links broken")
	}
	root.RemoveChild(b)
	if a.NextSibling != c || c.PrevSibling != a {
		t.Fatal("remove did not relink")
	}
	if b.Parent != nil {
		t.Fatal("removed node keeps parent")
	}
	root.RemoveChild(a)
	root.RemoveChild(c)
	if root.FirstChild != nil || root.LastChild != nil {
		t.Fatal("empty root keeps children")
	}
}

func TestNodeClone(t *testing.T) {
	doc := mustParse(t, `<d><s a="1">x<i>y</i></s></d>`, ModeXML)
	cp := doc.Clone()
	if !treeEqual(doc, cp) {
		t.Fatal("clone differs")
	}
	// Mutating the clone must not affect the original.
	cp.Find("s").SetAttr("a", "2")
	if v, _ := doc.Find("s").Attr("a"); v != "1" {
		t.Fatal("clone shares attrs with original")
	}
}

func TestClassify(t *testing.T) {
	cfg := HTMLConfig()
	cases := []struct {
		node *Node
		want NodeClass
	}{
		{NewElement("h1"), ClassContext},
		{NewElement("h6"), ClassContext},
		{NewElement("title"), ClassContext},
		{NewElement("b"), ClassIntense},
		{NewElement("em"), ClassIntense},
		{NewElement("table"), ClassSimulation},
		{NewElement("li"), ClassSimulation},
		{NewElement("div"), ClassElement},
		{NewElement("span"), ClassElement},
		{NewText("hello"), ClassText},
	}
	for _, c := range cases {
		if got := cfg.Classify(c.node); got != c.want {
			t.Fatalf("Classify(%d %q) = %v, want %v", c.node.Kind, c.node.Name, got, c.want)
		}
	}
}

func TestClassifyCaseInsensitiveHTML(t *testing.T) {
	cfg := HTMLConfig()
	n := NewElement("H2") // manually built; parser would lowercase
	if got := cfg.Classify(n); got != ClassContext {
		t.Fatalf("H2 = %v", got)
	}
}

func TestClassifyXMLConfig(t *testing.T) {
	cfg := XMLConfig()
	if cfg.Classify(NewElement("context")) != ClassContext {
		t.Fatal("context element")
	}
	if cfg.Classify(NewElement("emphasis")) != ClassIntense {
		t.Fatal("emphasis element")
	}
	if cfg.Classify(NewElement("row")) != ClassSimulation {
		t.Fatal("row element")
	}
	if cfg.Classify(NewElement("payload")) != ClassElement {
		t.Fatal("payload element")
	}
}

func TestSniffMode(t *testing.T) {
	if SniffMode(`<!DOCTYPE html><html>`) != ModeHTML {
		t.Fatal("doctype html")
	}
	if SniffMode(`<?xml version="1.0"?><doc/>`) != ModeXML {
		t.Fatal("xml declaration")
	}
	if SniffMode(`<p>loose paragraph`) != ModeHTML {
		t.Fatal("p tag implies html")
	}
	if SniffMode(`<records><r/></records>`) != ModeXML {
		t.Fatal("generic xml")
	}
}

func TestCountNodes(t *testing.T) {
	doc := mustParse(t, `<a><b>t</b><c/></a>`, ModeXML)
	// document + a + b + text + c = 5
	if got := doc.CountNodes(); got != 5 {
		t.Fatalf("CountNodes = %d", got)
	}
}

func TestTextNormalisesWhitespace(t *testing.T) {
	doc := mustParse(t, "<t>  a\n\tb   c  </t>", ModeXML)
	if got := doc.FirstChild.Text(); got != "a b c" {
		t.Fatalf("text = %q", got)
	}
}

func TestDeepNesting(t *testing.T) {
	var sb strings.Builder
	const depth = 500
	for i := 0; i < depth; i++ {
		sb.WriteString("<n>")
	}
	sb.WriteString("core")
	for i := 0; i < depth; i++ {
		sb.WriteString("</n>")
	}
	doc := mustParse(t, sb.String(), ModeXML)
	n := doc.FirstChild
	levels := 0
	for n != nil && n.Kind == ElementNode {
		levels++
		n = n.FirstChild
	}
	if levels != depth {
		t.Fatalf("depth = %d", levels)
	}
}

// Property: the parser never fails or panics on arbitrary byte soup in
// either mode — the NETMARK ingest path must accept anything users drop
// into the folder.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(raw []byte, html bool) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", raw, r)
				ok = false
			}
		}()
		mode := ModeXML
		if html {
			mode = ModeHTML
		}
		doc, err := ParseString(string(raw), mode)
		if err != nil {
			// Errors are allowed; crashes and nil trees are not.
			return true
		}
		// The result must be serialisable and re-parseable.
		out := Serialize(doc)
		_, err2 := ParseString(out, ModeXML)
		return err2 == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: markup-like fragments with unbalanced tags always produce a
// tree whose text content retains the input's non-markup words.
func TestQuickParserKeepsText(t *testing.T) {
	f := func(word1, word2 uint8) bool {
		w1 := "alpha" + string(rune('a'+word1%26))
		w2 := "beta" + string(rune('a'+word2%26))
		src := "<a><b>" + w1 + "<c>" + w2 // all unclosed
		doc, err := ParseString(src, ModeXML)
		if err != nil {
			return false
		}
		text := doc.Text()
		return strings.Contains(text, w1) && strings.Contains(text, w2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseHTML(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<html><body>")
	for i := 0; i < 50; i++ {
		sb.WriteString("<h2>Section</h2><p>Some paragraph text with <b>bold</b> runs and detail.</p>")
	}
	sb.WriteString("</body></html>")
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(src, ModeHTML); err != nil {
			b.Fatal(err)
		}
	}
}
