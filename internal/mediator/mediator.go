// Package mediator implements the baseline NETMARK is compared against: a
// Global-as-View (GAV) mediation framework in the style of MIX [8] and
// Tukwila [4] (and the industrial Enosys [9] and Nimble [1] systems).
//
// In this architecture "each information source is viewed as exporting an
// XML view (called a source view) of the data it contains.  An integrated
// (global) view of the data is formed by defining an integrated view of
// the data over the individual data source views" (§4).  That buys
// virtual views (the paper's "Top Employees" example) at the cost the
// paper attacks: one registered schema per source, one mapping per
// (global view, source) pair, all maintained by hand as sources are
// added.  The artifact accounting here is what makes Fig 1's cost curve
// linear.
package mediator

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"netmark/internal/xdb"
)

// SourceRelation is one relation a source exports: its attributes map
// 1:1 to the section headings of the wrapped document source.
type SourceRelation struct {
	Name  string
	Attrs []string
}

// SourceSchema is the registered schema of one source — the first
// artifact class the mediator requires per source.
type SourceSchema struct {
	Source    string
	Relations []SourceRelation
}

// Relation looks up a relation by name.
func (s *SourceSchema) Relation(name string) (SourceRelation, bool) {
	for _, r := range s.Relations {
		if r.Name == name {
			return r, true
		}
	}
	return SourceRelation{}, false
}

// GlobalView is an integrated relation over the sources.
type GlobalView struct {
	Name  string
	Attrs []string
}

// Mapping defines how one source relation contributes to a global view —
// the second artifact class, one per (view, source) pair.  AttrMap maps
// global attribute -> source attribute (the "Cost Details maps to
// Budget" reconciliation NETMARK refuses to require).
type Mapping struct {
	View     string
	Source   string
	Relation string
	AttrMap  map[string]string
	// Filter optionally restricts which source tuples qualify (the "Top
	// Employees" per-source conditions: rating of excellent at Ames,
	// score <= 2 at Johnson, ...).  Attribute names are source-side.
	Filter func(Tuple) bool
}

// Tuple is one row of a (virtual) relation.
type Tuple map[string]string

// Clone copies a tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// SourceAdapter materialises source relations.  The document adapter
// turns each stored document into one tuple, with attribute values drawn
// from the document's context sections — exactly the per-source wrapper a
// GAV deployment has to build and maintain.
type SourceAdapter interface {
	Name() string
	Extract(ctx context.Context, rel SourceRelation) ([]Tuple, error)
}

// DocAdapter wraps an XDB engine as a relational source.
type DocAdapter struct {
	name   string
	engine *xdb.Engine
}

// NewDocAdapter builds an adapter over a local engine.
func NewDocAdapter(name string, engine *xdb.Engine) *DocAdapter {
	return &DocAdapter{name: name, engine: engine}
}

// Name returns the source name.
func (a *DocAdapter) Name() string { return a.name }

// Extract materialises one tuple per document: for each attribute, the
// content of the section whose heading equals the attribute name.
// Documents missing every attribute are skipped.
func (a *DocAdapter) Extract(ctx context.Context, rel SourceRelation) ([]Tuple, error) {
	byDoc := make(map[uint64]Tuple)
	order := []uint64{}
	for _, attr := range rel.Attrs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		secs, err := a.engine.Store().ContextSearch(attr)
		if err != nil {
			return nil, err
		}
		for _, sec := range secs {
			t, ok := byDoc[sec.DocID]
			if !ok {
				t = Tuple{}
				byDoc[sec.DocID] = t
				order = append(order, sec.DocID)
			}
			if _, dup := t[attr]; !dup {
				t[attr] = sec.Content
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]Tuple, 0, len(order))
	for _, id := range order {
		out = append(out, byDoc[id])
	}
	return out, nil
}

// Mediator is the integration middleware: registered schemas, global
// views, mappings, and source adapters.
type Mediator struct {
	mu       sync.RWMutex
	schemas  map[string]*SourceSchema // guarded by mu
	views    map[string]*GlobalView   // guarded by mu
	mappings []Mapping                // guarded by mu
	adapters map[string]SourceAdapter // guarded by mu
}

// New creates an empty mediator.
func New() *Mediator {
	return &Mediator{
		schemas:  make(map[string]*SourceSchema),
		views:    make(map[string]*GlobalView),
		adapters: make(map[string]SourceAdapter),
	}
}

// RegisterSource declares a source schema and its adapter.  Both are
// mandatory before any mapping can reference the source.
func (m *Mediator) RegisterSource(schema *SourceSchema, adapter SourceAdapter) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if schema.Source == "" || schema.Source != adapter.Name() {
		return fmt.Errorf("mediator: schema/adapter name mismatch (%q vs %q)", schema.Source, adapter.Name())
	}
	if _, dup := m.schemas[schema.Source]; dup {
		return fmt.Errorf("mediator: source %q already registered", schema.Source)
	}
	if len(schema.Relations) == 0 {
		return fmt.Errorf("mediator: source %q exports no relations", schema.Source)
	}
	m.schemas[schema.Source] = schema
	m.adapters[schema.Source] = adapter
	return nil
}

// DefineView declares a global view.
func (m *Mediator) DefineView(v *GlobalView) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v.Name == "" || len(v.Attrs) == 0 {
		return fmt.Errorf("mediator: view needs a name and attributes")
	}
	if _, dup := m.views[v.Name]; dup {
		return fmt.Errorf("mediator: view %q already defined", v.Name)
	}
	m.views[v.Name] = v
	return nil
}

// AddMapping connects a source relation to a global view.  Every global
// attribute must be mapped to a source attribute that exists in the
// registered schema — the consistency burden the paper complains about
// ("schema-chaos").
func (m *Mediator) AddMapping(mp Mapping) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	view, ok := m.views[mp.View]
	if !ok {
		return fmt.Errorf("mediator: mapping references unknown view %q", mp.View)
	}
	schema, ok := m.schemas[mp.Source]
	if !ok {
		return fmt.Errorf("mediator: mapping references unregistered source %q", mp.Source)
	}
	rel, ok := schema.Relation(mp.Relation)
	if !ok {
		return fmt.Errorf("mediator: source %q has no relation %q", mp.Source, mp.Relation)
	}
	attrs := make(map[string]bool, len(rel.Attrs))
	for _, a := range rel.Attrs {
		attrs[a] = true
	}
	for _, g := range view.Attrs {
		srcAttr, mapped := mp.AttrMap[g]
		if !mapped {
			return fmt.Errorf("mediator: mapping %s<-%s leaves view attribute %q unmapped", mp.View, mp.Source, g)
		}
		if !attrs[srcAttr] {
			return fmt.Errorf("mediator: mapping %s<-%s binds %q to unknown source attribute %q", mp.View, mp.Source, g, srcAttr)
		}
	}
	m.mappings = append(m.mappings, mp)
	return nil
}

// Predicate filters tuples by a view attribute.
type Predicate struct {
	Attr string
	// Op: "eq" or "contains" (case-insensitive).
	Op    string
	Value string
}

func (p Predicate) holds(t Tuple) bool {
	v, ok := t[p.Attr]
	if !ok {
		return false
	}
	switch p.Op {
	case "eq":
		return strings.EqualFold(strings.TrimSpace(v), strings.TrimSpace(p.Value))
	case "contains":
		return strings.Contains(strings.ToLower(v), strings.ToLower(p.Value))
	default:
		return false
	}
}

// Query asks a global view for tuples satisfying all predicates.  The
// mediator unfolds the view: for every mapping it extracts the source
// relation, applies the mapping's filter, renames attributes into view
// terms, applies the predicates and unions the results (tagging
// provenance in the "_source" pseudo-attribute).
func (m *Mediator) Query(ctx context.Context, view string, preds []Predicate) ([]Tuple, error) {
	m.mu.RLock()
	v, ok := m.views[view]
	if !ok {
		m.mu.RUnlock()
		return nil, fmt.Errorf("mediator: no view %q", view)
	}
	var maps []Mapping
	for _, mp := range m.mappings {
		if mp.View == view {
			maps = append(maps, mp)
		}
	}
	m.mu.RUnlock()
	if len(maps) == 0 {
		return nil, fmt.Errorf("mediator: view %q has no mappings", view)
	}

	var out []Tuple
	for _, mp := range maps {
		m.mu.RLock()
		adapter := m.adapters[mp.Source]
		schema := m.schemas[mp.Source]
		m.mu.RUnlock()
		rel, _ := schema.Relation(mp.Relation)
		tuples, err := adapter.Extract(ctx, rel)
		if err != nil {
			return nil, fmt.Errorf("mediator: source %s: %w", mp.Source, err)
		}
		for _, src := range tuples {
			if mp.Filter != nil && !mp.Filter(src) {
				continue
			}
			gt := Tuple{"_source": mp.Source}
			for _, g := range v.Attrs {
				gt[g] = src[mp.AttrMap[g]]
			}
			keep := true
			for _, p := range preds {
				if !p.holds(gt) {
					keep = false
					break
				}
			}
			if keep {
				out = append(out, gt)
			}
		}
	}
	return out, nil
}

// ArtifactCount is Fig 1's cost metric for the mediator side: every
// source schema (one per source, weighted by its relations), every view
// definition, and every mapping is an artifact an administrator authors
// and maintains.
func (m *Mediator) ArtifactCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, s := range m.schemas {
		n += len(s.Relations) // schema document per relation
	}
	n += len(m.views)
	n += len(m.mappings)
	return n
}

// Stats describes the registered artifacts for reporting.
func (m *Mediator) Stats() (sources, views, mappings int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.schemas), len(m.views), len(m.mappings)
}
