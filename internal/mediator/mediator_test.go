package mediator

import (
	"context"
	"fmt"
	"testing"

	"netmark/internal/ordbms"
	"netmark/internal/xdb"
	"netmark/internal/xmlstore"
)

func newEngine(t testing.TB) *xdb.Engine {
	t.Helper()
	db, err := ordbms.Open(ordbms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := xmlstore.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return xdb.NewEngine(s)
}

func loadDoc(t testing.TB, e *xdb.Engine, name, data string) {
	t.Helper()
	if _, err := e.Store().StoreRaw(name, []byte(data)); err != nil {
		t.Fatal(err)
	}
}

// amesEngine: employee performance documents with a "Rating" heading.
func amesEngine(t testing.TB) *xdb.Engine {
	e := newEngine(t)
	for i, r := range []string{"excellent", "good", "excellent"} {
		loadDoc(t, e, fmt.Sprintf("ames-emp%d.html", i), fmt.Sprintf(
			`<html><body><h2>Employee</h2><p>Ames Person %d</p><h2>Rating</h2><p>%s</p></body></html>`, i, r))
	}
	return e
}

// johnsonEngine: different heading vocabulary ("Score" instead of
// "Rating") — the schema heterogeneity GAV mappings reconcile.
func johnsonEngine(t testing.TB) *xdb.Engine {
	e := newEngine(t)
	for i, s := range []string{"1", "4", "2"} {
		loadDoc(t, e, fmt.Sprintf("jsc-emp%d.html", i), fmt.Sprintf(
			`<html><body><h2>Name</h2><p>Johnson Person %d</p><h2>Score</h2><p>%s</p></body></html>`, i, s))
	}
	return e
}

func TestDocAdapterExtract(t *testing.T) {
	a := NewDocAdapter("ames", amesEngine(t))
	tuples, err := a.Extract(context.Background(), SourceRelation{
		Name: "employees", Attrs: []string{"Employee", "Rating"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 3 {
		t.Fatalf("tuples = %v", tuples)
	}
	if tuples[0]["Employee"] != "Ames Person 0" || tuples[0]["Rating"] != "excellent" {
		t.Fatalf("tuple = %v", tuples[0])
	}
}

// buildTopEmployees sets up the paper's §4 "Top Employees of NASA"
// virtual view over two centers with different schemas and per-source
// qualification rules.
func buildTopEmployees(t testing.TB, ames, jsc *xdb.Engine) *Mediator {
	m := New()
	if err := m.RegisterSource(&SourceSchema{
		Source: "ames",
		Relations: []SourceRelation{
			{Name: "employees", Attrs: []string{"Employee", "Rating"}},
		},
	}, NewDocAdapter("ames", ames)); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterSource(&SourceSchema{
		Source: "johnson",
		Relations: []SourceRelation{
			{Name: "personnel", Attrs: []string{"Name", "Score"}},
		},
	}, NewDocAdapter("johnson", jsc)); err != nil {
		t.Fatal(err)
	}
	if err := m.DefineView(&GlobalView{
		Name: "TopEmployees", Attrs: []string{"name", "merit"},
	}); err != nil {
		t.Fatal(err)
	}
	// Ames: rating of excellent qualifies.
	if err := m.AddMapping(Mapping{
		View: "TopEmployees", Source: "ames", Relation: "employees",
		AttrMap: map[string]string{"name": "Employee", "merit": "Rating"},
		Filter:  func(t Tuple) bool { return t["Rating"] == "excellent" },
	}); err != nil {
		t.Fatal(err)
	}
	// Johnson: score of 2 or better qualifies.
	if err := m.AddMapping(Mapping{
		View: "TopEmployees", Source: "johnson", Relation: "personnel",
		AttrMap: map[string]string{"name": "Name", "merit": "Score"},
		Filter:  func(t Tuple) bool { return t["Score"] == "1" || t["Score"] == "2" },
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTopEmployeesViewUnfolding(t *testing.T) {
	m := buildTopEmployees(t, amesEngine(t), johnsonEngine(t))
	tuples, err := m.Query(context.Background(), "TopEmployees", nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 excellent at Ames + 2 with score <=2 at Johnson.
	if len(tuples) != 4 {
		t.Fatalf("tuples = %v", tuples)
	}
	bySource := map[string]int{}
	for _, tp := range tuples {
		bySource[tp["_source"]]++
		if tp["name"] == "" || tp["merit"] == "" {
			t.Fatalf("unmapped attribute in %v", tp)
		}
	}
	if bySource["ames"] != 2 || bySource["johnson"] != 2 {
		t.Fatalf("per source = %v", bySource)
	}
}

func TestQueryPredicates(t *testing.T) {
	m := buildTopEmployees(t, amesEngine(t), johnsonEngine(t))
	tuples, err := m.Query(context.Background(), "TopEmployees", []Predicate{
		{Attr: "name", Op: "contains", Value: "johnson"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("filtered = %v", tuples)
	}
	tuples, err = m.Query(context.Background(), "TopEmployees", []Predicate{
		{Attr: "merit", Op: "eq", Value: "EXCELLENT"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("eq filter = %v", tuples)
	}
}

func TestMappingValidation(t *testing.T) {
	m := New()
	ames := amesEngine(t)
	if err := m.RegisterSource(&SourceSchema{
		Source:    "ames",
		Relations: []SourceRelation{{Name: "employees", Attrs: []string{"Employee", "Rating"}}},
	}, NewDocAdapter("ames", ames)); err != nil {
		t.Fatal(err)
	}
	if err := m.DefineView(&GlobalView{Name: "V", Attrs: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	// Unknown view.
	if err := m.AddMapping(Mapping{View: "nope", Source: "ames", Relation: "employees",
		AttrMap: map[string]string{"a": "Employee"}}); err == nil {
		t.Fatal("unknown view accepted")
	}
	// Unknown source.
	if err := m.AddMapping(Mapping{View: "V", Source: "nope", Relation: "employees",
		AttrMap: map[string]string{"a": "Employee"}}); err == nil {
		t.Fatal("unknown source accepted")
	}
	// Unknown relation.
	if err := m.AddMapping(Mapping{View: "V", Source: "ames", Relation: "nope",
		AttrMap: map[string]string{"a": "Employee"}}); err == nil {
		t.Fatal("unknown relation accepted")
	}
	// Unmapped view attribute.
	if err := m.AddMapping(Mapping{View: "V", Source: "ames", Relation: "employees",
		AttrMap: map[string]string{}}); err == nil {
		t.Fatal("unmapped attribute accepted")
	}
	// Mapping to a nonexistent source attribute.
	if err := m.AddMapping(Mapping{View: "V", Source: "ames", Relation: "employees",
		AttrMap: map[string]string{"a": "Ghost"}}); err == nil {
		t.Fatal("bad source attribute accepted")
	}
	// A correct one.
	if err := m.AddMapping(Mapping{View: "V", Source: "ames", Relation: "employees",
		AttrMap: map[string]string{"a": "Employee"}}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateRegistrations(t *testing.T) {
	m := New()
	ames := amesEngine(t)
	schema := &SourceSchema{Source: "ames",
		Relations: []SourceRelation{{Name: "r", Attrs: []string{"Employee"}}}}
	if err := m.RegisterSource(schema, NewDocAdapter("ames", ames)); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterSource(schema, NewDocAdapter("ames", ames)); err == nil {
		t.Fatal("duplicate source accepted")
	}
	v := &GlobalView{Name: "V", Attrs: []string{"a"}}
	if err := m.DefineView(v); err != nil {
		t.Fatal(err)
	}
	if err := m.DefineView(v); err == nil {
		t.Fatal("duplicate view accepted")
	}
}

// TestArtifactCountGrowsLinearly demonstrates the Fig 1 claim: mediator
// artifacts grow with sources x views, the databank's stay at 1+N.
func TestArtifactCountGrowsLinearly(t *testing.T) {
	counts := []int{}
	for _, n := range []int{1, 2, 4, 8} {
		m := New()
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("src%d", i)
			e := amesEngine(t)
			if err := m.RegisterSource(&SourceSchema{
				Source:    name,
				Relations: []SourceRelation{{Name: "employees", Attrs: []string{"Employee", "Rating"}}},
			}, NewDocAdapter(name, e)); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.DefineView(&GlobalView{Name: "V", Attrs: []string{"name"}}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := m.AddMapping(Mapping{View: "V", Source: fmt.Sprintf("src%d", i),
				Relation: "employees", AttrMap: map[string]string{"name": "Employee"}}); err != nil {
				t.Fatal(err)
			}
		}
		counts = append(counts, m.ArtifactCount())
	}
	// Strictly increasing, and the increment per source is at least 2
	// (schema + mapping).
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Fatalf("artifact counts not increasing: %v", counts)
		}
	}
	if counts[3]-counts[2] < 8 { // 4 more sources x (schema+mapping)
		t.Fatalf("mediator cost increment too small: %v", counts)
	}
}

func TestQueryErrors(t *testing.T) {
	m := New()
	if _, err := m.Query(context.Background(), "ghost", nil); err == nil {
		t.Fatal("unknown view query accepted")
	}
	if err := m.DefineView(&GlobalView{Name: "V", Attrs: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(context.Background(), "V", nil); err == nil {
		t.Fatal("mappingless view query accepted")
	}
}
