// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the ablations described in README.md.  The
// human-readable reports behind the same experiments are produced by
// cmd/nmbench; these benches measure the kernels under the Go benchmark
// framework so regressions are visible in -benchmem terms.
package netmark_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"netmark"
	"netmark/internal/corpus"
	"netmark/internal/costmodel"
	"netmark/internal/databank"
	"netmark/internal/docform"
	"netmark/internal/experiments"
	"netmark/internal/ordbms"
	"netmark/internal/shred"
	"netmark/internal/webdav"
	"netmark/internal/xdb"
	"netmark/internal/xmlstore"
)

// loadedStore builds an in-memory store pre-loaded with n proposals.
func loadedStore(b *testing.B, n int, seed int64) *xmlstore.Store {
	b.Helper()
	s, err := experiments.NewStore()
	if err != nil {
		b.Fatal(err)
	}
	gen := corpus.New(seed)
	if err := experiments.LoadCorpus(s, gen.Proposals(n)); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable1AppAssembly measures what Table 1 claims is cheap: the
// complete assembly of an integration application — databank declaration
// plus first integrated query — for the Anomaly Tracking shape (one full
// source, one content-only legacy source).
func BenchmarkTable1AppAssembly(b *testing.B) {
	sa, err := experiments.NewStore()
	if err != nil {
		b.Fatal(err)
	}
	sb, err := experiments.NewStore()
	if err != nil {
		b.Fatal(err)
	}
	gen := corpus.New(41)
	if err := experiments.LoadCorpus(sa, gen.Anomalies(50)); err != nil {
		b.Fatal(err)
	}
	if err := experiments.LoadCorpus(sb, gen.Anomalies(50)); err != nil {
		b.Fatal(err)
	}
	ea, eb := xdb.NewEngine(sa), xdb.NewEngine(sb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank := databank.New("anomaly")
		bank.AddSource(databank.NewLocalSource("tracker-a", ea))
		bank.AddSource(databank.NewLegacySource("lessons", databank.ContentOnly, eb))
		m, err := bank.Query(context.Background(), xdb.Query{Context: "System", Content: "Engine"})
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Sections()) == 0 {
			b.Fatal("assembled app returned nothing")
		}
	}
}

// BenchmarkFig1CostScaling measures the cost-model assembly itself:
// building the mediator (schemas+views+mappings) versus the databank
// specs for a 64-source, 4-application deployment.
func BenchmarkFig1CostScaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := costmodel.Measure(64, 4)
		if err != nil {
			b.Fatal(err)
		}
		if p.MediatorCost <= p.NetmarkCost {
			b.Fatal("cost ordering violated")
		}
	}
}

// BenchmarkFig6ContextSearch measures the Fig 6 operation — one context
// query returning the matching section of every document — across
// collection sizes.
func BenchmarkFig6ContextSearch(b *testing.B) {
	for _, docs := range []int{100, 300, 1000} {
		b.Run(fmt.Sprintf("docs=%d", docs), func(b *testing.B) {
			s := loadedStore(b, docs, int64(docs))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				secs, err := s.ContextSearch("Budget")
				if err != nil {
					b.Fatal(err)
				}
				if len(secs) != docs {
					b.Fatalf("sections = %d, want %d", len(secs), docs)
				}
			}
		})
	}
}

// BenchmarkFig6ContentSearch measures the content half of the kernel
// (text-index probe + traversal to governing contexts).
func BenchmarkFig6ContentSearch(b *testing.B) {
	s := loadedStore(b, 500, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ContentSearch("cryogenic"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7QueryTransform measures the full Fig 7 pipeline: XDB
// query plus XSLT composition of the result document, against the plain
// query for comparison.
func BenchmarkFig7QueryTransform(b *testing.B) {
	s, err := experiments.NewStore()
	if err != nil {
		b.Fatal(err)
	}
	gen := corpus.New(7)
	if err := experiments.LoadCorpus(s, gen.TaskPlans(300)); err != nil {
		b.Fatal(err)
	}
	eng := xdb.NewEngine(s)
	if err := eng.RegisterStylesheet("ibpd", experiments.IBPDStylesheet); err != nil {
		b.Fatal(err)
	}
	b.Run("search-only", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.ExecuteString("context=Budget"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("search+xslt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := eng.ExecuteString("context=Budget&xslt=ibpd")
			if err != nil {
				b.Fatal(err)
			}
			if res.Transformed == nil {
				b.Fatal("no composed document")
			}
		}
	})
}

// BenchmarkFig8MultiSourceFanout measures the thin router's own overhead
// across source counts, parallel versus sequential, with all sources
// local (no network).  The Fig 8 wall-clock shape — near-flat parallel
// latency versus linear sequential growth — appears once sources carry
// realistic round-trip latency; `nmbench -exp fig8` reproduces that with
// a simulated 2 ms RTT per source (see internal/experiments).
func BenchmarkFig8MultiSourceFanout(b *testing.B) {
	build := func(n int) *databank.Databank {
		bank := databank.New("fig8")
		for i := 0; i < n; i++ {
			s, err := experiments.NewStore()
			if err != nil {
				b.Fatal(err)
			}
			gen := corpus.New(int64(100*n + i))
			if err := experiments.LoadCorpus(s, gen.Anomalies(20)); err != nil {
				b.Fatal(err)
			}
			eng := xdb.NewEngine(s)
			name := fmt.Sprintf("src%02d", i)
			if i%3 == 2 {
				bank.AddSource(databank.NewLegacySource(name, databank.ContentOnly, eng))
			} else {
				bank.AddSource(databank.NewLocalSource(name, eng))
			}
		}
		return bank
	}
	q := xdb.Query{Context: "System", Content: "Engine"}
	for _, n := range []int{2, 8, 32} {
		bank := build(n)
		b.Run(fmt.Sprintf("parallel/sources=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bank.Query(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sequential/sources=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bank.QuerySequential(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAugmentation isolates §2.1.5 query augmentation: decompose,
// pushdown to a content-only source, residual filter.
func BenchmarkAugmentation(b *testing.B) {
	s, err := experiments.NewStore()
	if err != nil {
		b.Fatal(err)
	}
	gen := corpus.New(15)
	if err := experiments.LoadCorpus(s, gen.LessonsLearned(100)); err != nil {
		b.Fatal(err)
	}
	eng := xdb.NewEngine(s)
	bank := databank.New("aug")
	bank.AddSource(databank.NewLegacySource("lessons", databank.ContentOnly, eng))
	q := xdb.Query{Context: "Title", Content: "Engine"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := bank.Query(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Errs()) != 0 {
			b.Fatalf("errors: %v", m.Errs())
		}
	}
}

// BenchmarkAblationRowidTraversal compares one parent-chain walk via
// physical RowID links against the same walk via NODEID B-tree probes.
func BenchmarkAblationRowidTraversal(b *testing.B) {
	s := loadedStore(b, 200, 17)
	secs, err := s.ContextSearch("Budget")
	if err != nil || len(secs) == 0 {
		b.Fatalf("setup: %v", err)
	}
	start, err := s.FetchNode(secs[0].ContextRID)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("rowid-links", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := start
			for !n.ParentRowID.IsZero() {
				var err error
				n, err = s.FetchNode(n.ParentRowID)
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("btree-probe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := start
			for n.ParentID != 0 {
				var err error
				n, err = s.FetchNodeByID(n.ParentID)
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationShredVsUniversal compares document ingest into the
// universal two-table store against schema-aware shredding.
func BenchmarkAblationShredVsUniversal(b *testing.B) {
	gen := corpus.New(23)
	docs := gen.Mixed(50)
	b.Run("universal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := experiments.NewStore()
			if err != nil {
				b.Fatal(err)
			}
			if err := experiments.LoadCorpus(s, docs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shredded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db, err := ordbms.Open(ordbms.Options{})
			if err != nil {
				b.Fatal(err)
			}
			sh, err := shred.Open(db)
			if err != nil {
				b.Fatal(err)
			}
			for _, d := range docs {
				tree, _, err := docform.Convert(d.Name, d.Data)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sh.StoreDocument(d.Name, tree); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationTextIndexVsScan compares index-first content search
// (§2.1.4) against a full node scan.
func BenchmarkAblationTextIndexVsScan(b *testing.B) {
	s := loadedStore(b, 300, 29)
	b.Run("text-index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.ContentSearch("cryogenic"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			count := 0
			err := s.ScanNodes(func(n *xmlstore.Node) bool {
				if strings.Contains(strings.ToLower(n.Data), "cryogenic") {
					count++
				}
				return true
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIngestByFormat measures the upmark+store path per source
// format (documents/op).
func BenchmarkIngestByFormat(b *testing.B) {
	gen := corpus.New(31)
	formats := map[string]corpus.Document{
		"html": gen.Proposal(1), // html variant
		"rtf":  gen.Proposal(0), // rtf variant
		"text": gen.Proposal(2), // text variant
		"csv":  gen.BudgetSpreadsheet(50),
	}
	for name, doc := range formats {
		b.Run(name, func(b *testing.B) {
			nm, err := netmark.Open(netmark.Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer nm.Close()
			b.SetBytes(int64(len(doc.Data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nm.Ingest(fmt.Sprintf("%d-%s", i, doc.Name), doc.Data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIngestParallel measures the concurrent batch-ingestion
// pipeline against the sequential one-document-at-a-time path over the
// same mixed corpus.  "sequential" is the old write path (Ingest per
// document); the parallel variants fan parse/upmark/shred across
// workers, feed a single ordered writer, and overlap derived indexing —
// on a multi-core runner the worker sweep shows the pipeline's
// throughput multiple.
func BenchmarkIngestParallel(b *testing.B) {
	gen := corpus.New(47)
	docs := gen.Mixed(200)
	batch := make([]netmark.Doc, len(docs))
	var total int64
	for i, d := range docs {
		batch[i] = netmark.Doc{Name: d.Name, Data: d.Data}
		total += int64(len(d.Data))
	}
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(total)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nm, err := netmark.Open(netmark.Config{})
			if err != nil {
				b.Fatal(err)
			}
			for _, d := range docs {
				if _, err := nm.Ingest(d.Name, d.Data); err != nil {
					b.Fatal(err)
				}
			}
			nm.Close()
		}
	})
	workerCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("parallel/workers=%d", w), func(b *testing.B) {
			b.SetBytes(total)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				nm, err := netmark.Open(netmark.Config{
					IngestWorkers:   w,
					IngestBatchSize: len(batch),
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range nm.IngestBatch(batch) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
				nm.Close()
			}
		})
	}
}

// BenchmarkColdContentSearch measures the uncached §2.1.4 kernel — text
// index probe, hit resolution, governing-context lookup, section
// materialisation — over a deep-document corpus (long sibling runs,
// nested blocks) where pointer-chasing is at its worst.  No query result
// cache is involved: every iteration executes the full kernel.
//
//	baseline   = the pre-PR kernel: no node cache, pointer-chasing
//	             ContextFor walk, serial section materialisation
//	optimized  = decoded-node cache + derived node→CONTEXT index +
//	             parallel materialisation (the default configuration)
//
// The acceptance bar for PR 3 is ≥5× fewer ns/op and allocs/op between
// the two (see BENCH_PR3.json).
func BenchmarkColdContentSearch(b *testing.B) {
	newDeepStore := func(b *testing.B) *xmlstore.Store {
		b.Helper()
		s, err := experiments.NewStore()
		if err != nil {
			b.Fatal(err)
		}
		gen := corpus.New(61)
		for _, d := range gen.DeepReports(20, 6, 24, 16) {
			if _, err := s.StoreRaw(d.Name, d.Data); err != nil {
				b.Fatal(err)
			}
		}
		return s
	}
	run := func(b *testing.B, s *xmlstore.Store) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			secs, err := s.ContentSearch("cryogenic")
			if err != nil {
				b.Fatal(err)
			}
			if len(secs) == 0 {
				b.Fatal("no sections")
			}
		}
	}
	b.Run("baseline", func(b *testing.B) {
		s := newDeepStore(b)
		s.SetContextIndexEnabled(false)
		s.SetQueryWorkers(1)
		run(b, s)
	})
	b.Run("optimized", func(b *testing.B) {
		s := newDeepStore(b)
		s.EnableNodeCache(64 << 20)
		s.SetQueryWorkers(0) // GOMAXPROCS
		run(b, s)
		b.StopTimer()
		// Record the block-compressed text index's resident footprint and
		// its multiple over the flat 8-bytes-per-id layout it replaced, so
		// BENCH_PR*.json tracks the memory side of this kernel too.
		st := s.TextIndexStats()
		b.ReportMetric(float64(st.BytesResident), "index-bytes")
		b.ReportMetric(st.CompressionRatio, "index-compression-x")
	})
	b.Run("optimized-serial", func(b *testing.B) {
		// Isolates the node cache + context index from the worker pool.
		s := newDeepStore(b)
		s.EnableNodeCache(64 << 20)
		s.SetQueryWorkers(1)
		run(b, s)
	})
}

// BenchmarkMixedWriteHeavy measures the serving stack under write-heavy
// mixed traffic: half of all operations are writes (1/3 ingests plus
// 1/6 deletes of churn documents), the other half are queries over a
// stable set of documents whose headings and terms the churn never
// touches.  With PR 2's single
// global cache generation every write invalidated everything and each
// read ran the kernel cold; with per-term/per-heading keyed caching the
// untouched-document queries keep being served from cache — the reported
// hit metric is the proof (hits ≈ reads, misses ≈ distinct queries).
func BenchmarkMixedWriteHeavy(b *testing.B) {
	store := loadedStore(b, 200, 43)
	store.EnableNodeCache(32 << 20)
	e := xdb.NewEngine(store)
	e.EnableCache(64 << 20)
	srv, err := webdav.NewServer(e, nil, "")
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	// Churn documents share no headings/terms with the proposal corpus
	// queries below.
	churn := `<report><heading>Warehouse Logistics</heading><para>inventory relocation memo</para></report>`
	queries := []string{
		"/xdb?context=Budget",
		"/xdb?context=Schedule",
		"/xdb?content=cryogenic",
		"/xdb?context=Budget&content=request&limit=20",
	}
	var seq atomic.Int64
	var lastDoc atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seq.Add(1)
			switch {
			case n%3 == 0: // write: ingest a churn doc
				id, err := store.StoreRaw(fmt.Sprintf("churn-%d.xml", n), []byte(churn))
				if err != nil {
					b.Error(err)
					return
				}
				lastDoc.Store(id)
			case n%6 == 1: // write: delete a previous churn doc
				if id := lastDoc.Swap(0); id != 0 {
					if err := store.DeleteDocument(id); err != nil && !xmlstore.IsGone(err) {
						b.Error(err)
						return
					}
				}
			default: // read over untouched documents
				req := httptest.NewRequest(http.MethodGet, queries[n%int64(len(queries))], nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != 200 {
					b.Errorf("GET = %d: %s", rec.Code, rec.Body)
					return
				}
			}
		}
	})
	b.StopTimer()
	if st, ok := e.CacheStats(); ok {
		b.ReportMetric(float64(st.Hits), "hits")
		b.ReportMetric(float64(st.Misses), "misses")
		b.ReportMetric(float64(st.Stale), "stale")
	}
}

// BenchmarkCombinedQueryPlans measures both sides of the Search planner
// on the paper's Context=Technology Gap & Content=Shrinking shape.
func BenchmarkCombinedQueryPlans(b *testing.B) {
	s := loadedStore(b, 400, 37)
	b.Run("planner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Search("Budget", "request"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeParallel measures the concurrent read-serving subsystem:
// parallel HTTP queries through the hardened handler, with and without
// the invalidation-aware result cache, plus a mixed workload where hot
// repeats, cold one-off queries, and invalidating writes interleave —
// the traffic shape of the ROADMAP's heavy-read north star.  The hot
// cached/uncached pair is the headline: repeated queries served from the
// cache versus re-executed every time.
func BenchmarkServeParallel(b *testing.B) {
	const docs = 300
	newServer := func(b *testing.B, cacheBytes int64) (http.Handler, *xdb.Engine) {
		b.Helper()
		store := loadedStore(b, docs, 42)
		e := xdb.NewEngine(store)
		if cacheBytes > 0 {
			e.EnableCache(cacheBytes)
		}
		srv, err := webdav.NewServer(e, nil, "")
		if err != nil {
			b.Fatal(err)
		}
		return srv.Handler(), e
	}
	// hit runs inside RunParallel workers: Errorf (goroutine-safe), not
	// Fatalf (FailNow must run on the benchmark goroutine).
	hit := func(b *testing.B, h http.Handler, path string) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Errorf("GET %s = %d: %s", path, rec.Code, rec.Body)
		}
	}

	const hotQuery = "/xdb?context=Budget"
	for _, cfg := range []struct {
		name       string
		cacheBytes int64
	}{
		{"hot/uncached", 0},
		{"hot/cached", 64 << 20},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			h, _ := newServer(b, cfg.cacheBytes)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					hit(b, h, hotQuery)
				}
			})
		})
	}

	// Mixed traffic: mostly the hot query, a slice of distinct cold
	// queries, and occasional writes that invalidate the whole cache.
	b.Run("mixed/cached", func(b *testing.B) {
		h, e := newServer(b, 64<<20)
		var seq atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				n := seq.Add(1)
				switch {
				case n%100 == 0: // invalidating write
					name := fmt.Sprintf("inv%d.html", n)
					doc := `<html><head><title>I</title></head><body><h1>Budget</h1><p>invalidator</p></body></html>`
					if _, err := e.Store().StoreRaw(name, []byte(doc)); err != nil {
						b.Error(err)
						return
					}
				case n%10 == 0: // cold query, distinct key
					hit(b, h, fmt.Sprintf("/xdb?context=Budget&content=funding&limit=%d", 200+n%97))
				default:
					hit(b, h, hotQuery)
				}
			}
		})
		b.StopTimer()
		// The same counters are what GET /stats surfaces in production.
		if st, ok := e.CacheStats(); ok {
			b.ReportMetric(float64(st.Hits), "hits")
			b.ReportMetric(float64(st.Misses), "misses")
			b.ReportMetric(float64(st.Evictions), "evictions")
		}
	})
}

// BenchmarkReopen measures restarting the middle tier over an existing
// persistent store — the paper keeps everything derivable in the ORDBMS,
// so before PR 4 every reopen rebuilt the text index, context btree,
// node→CONTEXT map, and all secondary indexes by scanning the entire
// heap, making restart O(corpus).
//
//	snapshot = load every derived structure from the checkpoint
//	           snapshots (stamp-validated against catalog + WAL)
//	scan     = the ablation: force the full-scan rebuild
//
// The acceptance bar for PR 4 is snapshot reopen ≥10x faster than scan
// reopen on the DeepReports corpus, with the gap widening as the corpus
// grows (snapshot cost tracks derived-state size, not heap size).
func BenchmarkReopen(b *testing.B) {
	for _, docs := range []int{8, 32} {
		dir := b.TempDir()
		db, err := ordbms.Open(ordbms.Options{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		s, err := xmlstore.Open(db)
		if err != nil {
			b.Fatal(err)
		}
		gen := corpus.New(61)
		for _, d := range gen.DeepReports(docs, 6, 24, 16) {
			if _, err := s.StoreRaw(d.Name, d.Data); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}

		reopen := func(b *testing.B, disable bool) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db, err := ordbms.Open(ordbms.Options{Dir: dir, NoDerivedSnapshot: disable})
				if err != nil {
					b.Fatal(err)
				}
				s, err := xmlstore.OpenWith(db, xmlstore.OpenOptions{DisableSnapshot: disable})
				if err != nil {
					b.Fatal(err)
				}
				if st := s.SnapshotStats(); st.Loaded == disable {
					b.Fatalf("unexpected snapshot state: %+v", st)
				}
				b.StopTimer()
				db.CloseDiscard()
				b.StartTimer()
			}
		}
		b.Run(fmt.Sprintf("snapshot/docs=%d", docs), func(b *testing.B) { reopen(b, false) })
		b.Run(fmt.Sprintf("scan/docs=%d", docs), func(b *testing.B) { reopen(b, true) })
	}
}
